(** Benchmark: iterative radix-2 Fast Fourier Transform (ported from
    DSOLVE's fft benchmark, itself from the classic CMU suite). The
    arrays are 1-indexed — px and py have length n+1 with slot 0 unused
    — which is what makes the index reasoning interesting. The paper
    singles fft out as "particularly egregious" for Prusti, needing 24
    lines of loop invariants; Flux needs none. *)

let name = "fft"

let flux_src =
  {|
// Taylor-series trig, so the kernel is self-contained.
#[lr::sig(fn(f32) -> f32)]
fn cos_t(x: f32) -> f32 {
    let x2 = x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut k = 0;
    while k < 8 {
        term = 0.0 - term * x2 / ((2.0 * flt(k) + 1.0) * (2.0 * flt(k) + 2.0));
        sum = sum + term;
        k += 1;
    }
    sum
}

#[lr::sig(fn(f32) -> f32)]
fn sin_t(x: f32) -> f32 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut k = 0;
    while k < 8 {
        term = 0.0 - term * x2 / ((2.0 * flt(k) + 2.0) * (2.0 * flt(k) + 3.0));
        sum = sum + term;
        k += 1;
    }
    sum
}

// integer-to-float conversion, trusted primitive
#[lr::trusted]
#[lr::sig(fn(i32) -> f32)]
fn flt(x: i32) -> f32;

#[lr::sig(fn(&mut RVec<f32, @n>, &mut RVec<f32, n>) requires 2 <= n)]
fn fft(px: &mut RVec<f32>, py: &mut RVec<f32>) {
    let n = px.len() - 1;

    // ---- bit-reversal permutation (1-indexed) ----
    let mut i = 1;
    let mut j = 1;
    while i < n {
        if i < j {
            if j <= n {
                let tx = *px.get(i);
                *px.get_mut(i) = *px.get(j);
                *px.get_mut(j) = tx;
                let ty = *py.get(i);
                *py.get_mut(i) = *py.get(j);
                *py.get_mut(j) = ty;
            }
        }
        let mut k = n / 2;
        while k < j {
            j -= k;
            k /= 2;
        }
        j += k;
        i += 1;
    }

    // ---- Danielson-Lanczos butterflies ----
    let mut le = 2;
    while le <= n {
        let le2 = le / 2;
        let ang = 3.14159265 / flt2(le2);
        let wr = cos_t(ang);
        let wi = 0.0 - sin_t(ang);
        let mut ur = 1.0;
        let mut ui = 0.0;
        let mut j2 = 1;
        while j2 <= le2 {
            let mut i2 = j2;
            while i2 <= n {
                let ip = i2 + le2;
                if ip <= n {
                    let tr = *px.get(ip) * ur - *py.get(ip) * ui;
                    let ti = *px.get(ip) * ui + *py.get(ip) * ur;
                    *px.get_mut(ip) = *px.get(i2) - tr;
                    *py.get_mut(ip) = *py.get(i2) - ti;
                    *px.get_mut(i2) = *px.get(i2) + tr;
                    *py.get_mut(i2) = *py.get(i2) + ti;
                }
                i2 += le;
            }
            let t = ur * wr - ui * wi;
            ui = ur * wi + ui * wr;
            ur = t;
            j2 += 1;
        }
        le *= 2;
    }
}

#[lr::trusted]
#[lr::sig(fn(usize) -> f32)]
fn flt2(x: usize) -> f32;

// driver: round the size up to a power of two, then transform
#[lr::sig(fn(usize<@n>) -> usize requires 2 <= n)]
fn fft_test(n: usize) -> usize {
    let mut np = 2;
    while np < n {
        np *= 2;
    }
    let mut px = RVec::new();
    let mut py = RVec::new();
    let mut i = 0;
    while i <= np {
        px.push(flt2(i));
        py.push(0.0);
        i += 1;
    }
    fft(&mut px, &mut py);
    px.len()
}
|}

let prusti_src =
  {|
fn cos_t(x: f32) -> f32 {
    let x2 = x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    let mut k = 0;
    while k < 8 {
        term = 0.0 - term * x2 / ((2.0 * flt(k) + 1.0) * (2.0 * flt(k) + 2.0));
        sum = sum + term;
        k += 1;
    }
    sum
}

fn sin_t(x: f32) -> f32 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut k = 0;
    while k < 8 {
        term = 0.0 - term * x2 / ((2.0 * flt(k) + 2.0) * (2.0 * flt(k) + 3.0));
        sum = sum + term;
        k += 1;
    }
    sum
}

#[trusted]
fn flt(x: i32) -> f32;

#[trusted]
fn flt2(x: usize) -> f32;

#[requires(2 <= px.len() - 1 && px.len() == py.len())]
fn fft(px: &mut RVec<f32>, py: &mut RVec<f32>) {
    let n = px.len() - 1;

    let mut i = 1;
    let mut j = 1;
    while i < n {
        body_invariant!(px.len() == n + 1 && py.len() == n + 1);
        body_invariant!(1 <= i && 1 <= j);
        if i < j {
            if j <= n {
                let tx = *px.get(i);
                *px.get_mut(i) = *px.get(j);
                *px.get_mut(j) = tx;
                let ty = *py.get(i);
                *py.get_mut(i) = *py.get(j);
                *py.get_mut(j) = ty;
            }
        }
        let mut k = n / 2;
        while k < j {
            body_invariant!(1 <= j && k <= n);
            j -= k;
            k /= 2;
        }
        j += k;
        i += 1;
    }

    let mut le = 2;
    while le <= n {
        body_invariant!(px.len() == n + 1 && py.len() == n + 1);
        body_invariant!(2 <= le);
        let le2 = le / 2;
        let ang = 3.14159265 / flt2(le2);
        let wr = cos_t(ang);
        let wi = 0.0 - sin_t(ang);
        let mut ur = 1.0;
        let mut ui = 0.0;
        let mut j2 = 1;
        while j2 <= le2 {
            body_invariant!(px.len() == n + 1 && py.len() == n + 1);
            body_invariant!(1 <= j2 && le2 <= n);
            let mut i2 = j2;
            while i2 <= n {
                body_invariant!(px.len() == n + 1 && py.len() == n + 1);
                body_invariant!(1 <= i2);
                let ip = i2 + le2;
                if ip <= n {
                    let tr = *px.get(ip) * ur - *py.get(ip) * ui;
                    let ti = *px.get(ip) * ui + *py.get(ip) * ur;
                    *px.get_mut(ip) = *px.get(i2) - tr;
                    *py.get_mut(ip) = *py.get(i2) - ti;
                    *px.get_mut(i2) = *px.get(i2) + tr;
                    *py.get_mut(i2) = *py.get(i2) + ti;
                }
                i2 += le;
            }
            let t = ur * wr - ui * wi;
            ui = ur * wi + ui * wr;
            ur = t;
            j2 += 1;
        }
        le *= 2;
    }
}

#[requires(2 <= n)]
fn fft_test(n: usize) -> usize {
    let mut np = 2;
    while np < n {
        body_invariant!(2 <= np);
        np *= 2;
    }
    let mut px = RVec::new();
    let mut py = RVec::new();
    let mut i = 0;
    while i <= np {
        body_invariant!(px.len() == i && py.len() == i && 2 <= np);
        px.push(flt2(i));
        py.push(0.0);
        i += 1;
    }
    fft(&mut px, &mut py);
    px.len()
}
|}
