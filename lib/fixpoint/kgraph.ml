(** The Horn κ-dependency graph and its SCC decomposition.

    A clause [∀xs. hyps ⇒ κ(es)] makes the solution of [κ] depend on
    the solution of every κ' occurring in [hyps]: weakening κ' can
    weaken the clause's left-hand side and hence force further
    weakening of κ. {!build} materializes that graph (an edge κ' → κ
    per such clause), runs Tarjan's strongly-connected-components
    algorithm over it, and lays the SCCs out in topological order as
    {e slices} — the unit of scheduling for the incremental solver in
    {!Solve} and for the engine's per-SCC work items.

    Each slice carries the κ-headed clauses of its SCC, the
    concrete-head clauses that become checkable once the SCC is solved
    (all their κ hypotheses are final), the direct predecessor slices,
    and a dependency level ([sl_level]): slices of equal level never
    read each other's κs, so they may be solved concurrently once every
    lower level is applied.

    Slice 0 is a synthetic root holding the κ-free concrete-head
    clauses; it declares no κs and depends on nothing. Clause indices
    ([int] paired with each clause) are positions in the input list, so
    failure reports can be re-sorted into the exact order the
    non-incremental reference loop produces.

    Undeclared κs in hypothesis position are ignored (the solver treats
    them as ⊤, see {!Solve.apply_hyp}); heads are assumed declared —
    {!Solve} rejects undeclared heads before building the graph. *)

type slice = {
  sl_id : int;  (** index into {!t.slices}; also the topological rank *)
  sl_kvars : string list;  (** κs of this SCC ([[]] for the root slice) *)
  sl_kclauses : (int * Horn.clause) list;
      (** κ-headed clauses whose head κ is in this SCC, input order *)
  sl_cclauses : (int * Horn.clause) list;
      (** concrete-head clauses whose last κ hypothesis is in this SCC *)
  sl_deps : int list;  (** direct predecessor slice ids, sorted *)
  sl_ext_kvars : string list;
      (** declared κs read from earlier slices, sorted — the external
          solution material a slice's solve depends on *)
  sl_level : int;
      (** longest dependency chain; equal levels are independent *)
}

type t = {
  slices : slice array;
      (** topological order: every dependency of [slices.(i)] has a
          smaller index *)
  scc_of : (string, int) Hashtbl.t;  (** κ name → owning slice id *)
  n_sccs : int;  (** real SCCs, excluding the synthetic root slice *)
}

let hyp_kvars (declared : (string, 'a) Hashtbl.t) (cl : Horn.clause) :
    string list =
  List.filter_map
    (function
      | Horn.Kapp (k, _) when Hashtbl.mem declared k -> Some k
      | Horn.Kapp _ | Horn.Conc _ -> None)
    cl.Horn.hyps
  |> List.sort_uniq String.compare

(** Tarjan over the κ nodes. Nodes are visited in declaration order and
    successors in first-mention order, so the SCC layout is a pure
    function of the input. Tarjan emits an SCC only after every SCC
    reachable from it; reversing the emission order therefore yields
    dependencies-first. *)
let tarjan (nodes : string array) (succs : string -> string list) :
    string list list =
  let n = Array.length nodes in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i k -> Hashtbl.replace index_of k i) nodes;
  let idx = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let sccs = ref [] in
  let rec visit v =
    idx.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun k ->
        let w = Hashtbl.find index_of k in
        if idx.(w) < 0 then begin
          visit w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      (succs nodes.(v));
    if low.(v) = idx.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then nodes.(w) :: acc else pop (nodes.(w) :: acc)
        | [] -> assert false
      in
      sccs := pop [] :: !sccs
    end
  in
  Array.iteri (fun v _ -> if idx.(v) < 0 then visit v) nodes;
  (* [!sccs] is already reversed emission order = topological order *)
  !sccs

let build ~(kvars : Horn.kvar list) (clauses : Horn.clause list) : t =
  let declared : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace declared kv.Horn.kname ()) kvars;
  let indexed = List.mapi (fun i cl -> (i, cl)) clauses in
  (* adjacency: κ → successors (first-mention order, deduplicated) *)
  let succ_tbl : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_edge src dst =
    let l =
      match Hashtbl.find_opt succ_tbl src with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add succ_tbl src l;
          l
    in
    if not (List.mem dst !l) then l := dst :: !l
  in
  List.iter
    (fun (_, cl) ->
      match cl.Horn.head with
      | Horn.Kapp (k, _) ->
          List.iter (fun k' -> add_edge k' k) (hyp_kvars declared cl)
      | Horn.Conc _ -> ())
    indexed;
  let nodes = Array.of_list (List.map (fun kv -> kv.Horn.kname) kvars) in
  let succs k =
    match Hashtbl.find_opt succ_tbl k with
    | Some l -> List.rev !l
    | None -> []
  in
  let sccs = tarjan nodes succs in
  let scc_of = Hashtbl.create 16 in
  List.iteri
    (fun i ks -> List.iter (fun k -> Hashtbl.replace scc_of k (i + 1)) ks)
    sccs;
  let n_sccs = List.length sccs in
  let kcls = Array.make (n_sccs + 1) [] in
  let ccls = Array.make (n_sccs + 1) [] in
  List.iter
    (fun (i, cl) ->
      match cl.Horn.head with
      | Horn.Kapp (k, _) ->
          let s = Hashtbl.find scc_of k in
          kcls.(s) <- (i, cl) :: kcls.(s)
      | Horn.Conc _ ->
          let s =
            List.fold_left
              (fun acc k -> max acc (Hashtbl.find scc_of k))
              0 (hyp_kvars declared cl)
          in
          ccls.(s) <- (i, cl) :: ccls.(s))
    indexed;
  let kvar_lists = Array.of_list ([] :: sccs) in
  let levels = Array.make (n_sccs + 1) 0 in
  let slices =
    Array.init (n_sccs + 1) (fun s ->
        let own = kvar_lists.(s) in
        let ext = Hashtbl.create 8 in
        List.iter
          (fun (_, cl) ->
            List.iter
              (fun k ->
                if not (List.mem k own) then Hashtbl.replace ext k ())
              (hyp_kvars declared cl))
          (kcls.(s) @ ccls.(s));
        let ext_kvars =
          Hashtbl.fold (fun k () acc -> k :: acc) ext []
          |> List.sort String.compare
        in
        let deps =
          List.map (fun k -> Hashtbl.find scc_of k) ext_kvars
          |> List.sort_uniq compare
        in
        let level =
          List.fold_left (fun acc d -> max acc (levels.(d) + 1)) 0 deps
        in
        levels.(s) <- level;
        {
          sl_id = s;
          sl_kvars = own;
          sl_kclauses = List.rev kcls.(s);
          sl_cclauses = List.rev ccls.(s);
          sl_deps = deps;
          sl_ext_kvars = ext_kvars;
          sl_level = level;
        })
  in
  { slices; scc_of; n_sccs }
