(** The Horn κ-dependency graph and its SCC decomposition.

    An edge κ' → κ exists for every clause with head [κ(es)] and κ' in
    its hypotheses. {!build} computes the strongly connected components
    (Tarjan) and lays them out in topological order as {e slices}, the
    scheduling unit of the incremental solver ({!Solve}) and of the
    engine's per-SCC work items. Slice 0 is a synthetic root holding the
    κ-free concrete-head clauses. Undeclared κs in hypothesis position
    contribute no edges (the solver treats them as ⊤); head κs are
    assumed declared — {!Solve} rejects undeclared heads before building
    the graph. The layout is a pure function of the input (deterministic
    node and successor orders). *)

type slice = {
  sl_id : int;  (** index into {!t.slices}; also the topological rank *)
  sl_kvars : string list;  (** κs of this SCC ([[]] for the root slice) *)
  sl_kclauses : (int * Horn.clause) list;
      (** κ-headed clauses whose head κ is in this SCC, input order;
          the [int] is the clause's position in the input list *)
  sl_cclauses : (int * Horn.clause) list;
      (** concrete-head clauses whose last κ hypothesis is in this SCC *)
  sl_deps : int list;  (** direct predecessor slice ids, sorted *)
  sl_ext_kvars : string list;
      (** declared κs read from earlier slices, sorted — the external
          solution material a slice's solve depends on *)
  sl_level : int;
      (** longest dependency chain; equal levels are independent *)
}

type t = {
  slices : slice array;
      (** topological order: every dependency of [slices.(i)] has a
          smaller index *)
  scc_of : (string, int) Hashtbl.t;  (** κ name → owning slice id *)
  n_sccs : int;  (** real SCCs, excluding the synthetic root slice *)
}

val build : kvars:Horn.kvar list -> Horn.clause list -> t

val hyp_kvars : (string, 'a) Hashtbl.t -> Horn.clause -> string list
(** The κs from the given table occurring in a clause's hypotheses,
    sorted and deduplicated. *)
