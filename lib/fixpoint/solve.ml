(** The liquid fixpoint solver: predicate abstraction by iterative
    weakening (Rondon et al. 2008; Cosman & Jhala 2017).

    Each κ variable starts at the conjunction of all sort-correct
    qualifier instantiations; clauses with κ heads repeatedly knock out
    conjuncts that are not implied by their hypotheses until a fixpoint
    is reached. The result is the strongest solution expressible in the
    qualifier lattice; the remaining concrete-head clauses are then
    checked once under it.

    Two equivalent schedules drive the weakening. The reference
    schedule ({!solve_clauses_full}) sweeps every κ-headed clause until
    nothing changes. The incremental schedule
    ({!solve_clauses_incremental}, the default) decomposes the system
    along the κ-dependency graph ({!Kgraph}): SCCs are solved in
    topological order, a clause is re-weakened only when the solution of
    a κ in its hypotheses shrank since its last evaluation, and
    concrete-head clauses are final-checked as soon as their last κ
    hypothesis is final. The weakening operator is monotone on the
    finite lattice of conjunct subsets, so both chaotic-iteration
    schedules converge to the same (strongest) fixpoint — verdicts,
    solutions and failure order are identical, which the differential
    tests and the fuzzer's [incremental] oracle enforce.

    The slice API ({!prepare} / {!run_slice} / {!apply_slice} /
    {!finish}) exposes the incremental schedule one SCC at a time so the
    engine can pool slices of equal dependency level across functions
    and cache per-slice results ({!slice_fingerprint}). *)

open Flux_smt
module Discharge = Flux_absint.Discharge

type solution = (string, Term.t list) Hashtbl.t
(** κ name → conjuncts over the κ's formal parameters *)

type failure = {
  f_tag : int;  (** caller-side tag of the failing head *)
  f_clause : Horn.clause;
  f_lhs : Term.t;  (** hypotheses after solution substitution *)
  f_rhs : Term.t;
}

type result = Sat of solution | Unsat of failure list * solution

exception Unbound_kvar of string
(** Raised when a clause's {e head} applies a κ that was never declared:
    defaulting such a head to ⊤ would make the clause vacuously valid
    and silently mask a missing kvar declaration. Hypothesis-position
    misses keep the ⊤ default — that only weakens the left-hand side,
    which is sound. *)

type stats = {
  mutable iterations : int;
  mutable weaken_checks : int;
  mutable final_checks : int;
  mutable scc_count : int;
  mutable reweaken_skipped : int;
      (** clause evaluations skipped because no κ hypothesis shrank *)
}

(* Domain-local, like the solver's stats: each domain running parallel
   per-function checks accumulates its own counters. *)
let stats_dls : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        iterations = 0;
        weaken_checks = 0;
        final_checks = 0;
        scc_count = 0;
        reweaken_skipped = 0;
      })

let stats () = Domain.DLS.get stats_dls

let reset_stats () =
  let stats = stats () in
  stats.iterations <- 0;
  stats.weaken_checks <- 0;
  stats.final_checks <- 0;
  stats.scc_count <- 0;
  stats.reweaken_skipped <- 0

let incremental_enabled = ref true

let subst_kapp (kv : Horn.kvar) (conjuncts : Term.t list) k
    (args : Term.t list) : Term.t =
  let m =
    try List.map2 (fun (x, _) a -> (x, a)) kv.Horn.kparams args
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "kvar %s applied to %d args, expects %d" k
           (List.length args)
           (List.length kv.Horn.kparams))
  in
  Term.mk_and (List.map (Term.subst m) conjuncts)

(** Substitute the current solution into a hypothesis predicate. An
    unknown κ becomes ⊤ — dropping a hypothesis only weakens the
    left-hand side, which is sound. *)
let apply_hyp (kenv : (string, Horn.kvar) Hashtbl.t) (sol : solution)
    (p : Horn.pred) : Term.t =
  match p with
  | Horn.Conc t -> t
  | Horn.Kapp (k, args) -> (
      match (Hashtbl.find_opt kenv k, Hashtbl.find_opt sol k) with
      | Some kv, Some conjuncts -> subst_kapp kv conjuncts k args
      | _ -> Term.tt)

(** Substitute the current solution into a head predicate. Unknown κs
    raise {!Unbound_kvar}: a ⊤ head would make the clause vacuously
    valid and mask a missing declaration. *)
let apply_head (kenv : (string, Horn.kvar) Hashtbl.t) (sol : solution)
    (p : Horn.pred) : Term.t =
  match p with
  | Horn.Conc t -> t
  | Horn.Kapp (k, args) -> (
      match (Hashtbl.find_opt kenv k, Hashtbl.find_opt sol k) with
      | Some kv, Some conjuncts -> subst_kapp kv conjuncts k args
      | _ -> raise (Unbound_kvar k))

(** Reject clauses whose head applies an undeclared κ, before solving
    begins — shared by both schedules so they fail identically. *)
let check_heads (kenv : (string, Horn.kvar) Hashtbl.t)
    (clauses : Horn.clause list) : unit =
  List.iter
    (fun cl ->
      match cl.Horn.head with
      | Horn.Kapp (k, _) when not (Hashtbl.mem kenv k) ->
          raise (Unbound_kvar k)
      | _ -> ())
    clauses

(** Cone-of-influence slicing: keep only the hypotheses transitively
    sharing a variable with the goal. Dropping hypotheses weakens the
    left-hand side, so slicing is sound (it can only make the validity
    check fail, never succeed spuriously). Disabled for variable-free
    goals (e.g. [false] for unreachable code), which depend on the whole
    path condition. *)
let slice_enabled = ref true

(** Pre-expand and flatten a clause's hypotheses under the current
    solution, tagging each conjunct with its free variables; shared by
    all the per-qualifier slices of one clause. *)
let prepare_hyps kenv sol (c : Horn.clause) : (Term.t * Term.VarSet.t) list =
  List.map (apply_hyp kenv sol) c.Horn.hyps
  |> List.concat_map (function Term.And ts -> ts | t -> [ t ])
  |> List.map (fun h -> (h, Term.free_vars h))

(** Cone-of-influence slice of prepared hypotheses w.r.t. [rhs], via
    the shared {!Term.cone_of_influence} worklist. *)
let slice_prepared (hyps : (Term.t * Term.VarSet.t) list) (rhs : Term.t) :
    Term.t =
  if not !slice_enabled then Term.mk_and (List.map fst hyps)
  else
    let seed = Term.free_vars rhs in
    if Term.VarSet.is_empty seed then Term.mk_and (List.map fst hyps)
    else Term.mk_and (Term.cone_of_influence hyps seed)

let sliced_lhs kenv sol (c : Horn.clause) (rhs : Term.t) : Term.t =
  slice_prepared (prepare_hyps kenv sol c) rhs

(** Build the initial environment and solution (every κ at its full
    qualifier instantiation) for a clause system. *)
let init_system ~qualifiers ~(kvars : Horn.kvar list)
    (clauses : Horn.clause list) :
    (string, Horn.kvar) Hashtbl.t * solution =
  let kenv = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace kenv kv.Horn.kname kv) kvars;
  check_heads kenv clauses;
  let sol : solution = Hashtbl.create 16 in
  List.iter
    (fun kv ->
      Hashtbl.replace sol kv.Horn.kname
        (Qualifier.instantiate_all ~values:kv.Horn.kvalues qualifiers
           kv.Horn.kparams))
    kvars;
  (kenv, sol)

(** One weakening step for a κ-headed clause against [sol]: knock out
    the head κ's conjuncts not implied by the hypotheses. Returns
    whether the κ's solution shrank. *)
let weaken_clause stats kenv (sol : solution) (cl : Horn.clause) : bool =
  match cl.Horn.head with
  | Horn.Conc _ -> false
  | Horn.Kapp (k, args) -> (
      match Hashtbl.find_opt sol k with
      | None -> raise (Unbound_kvar k)
      | Some [] -> false
      | Some conjuncts ->
          let kv = Hashtbl.find kenv k in
          let m = List.map2 (fun (x, _) a -> (x, a)) kv.Horn.kparams args in
          let prepared = prepare_hyps kenv sol cl in
          (* The slice depends on the goal only through its
             free-variable set, and the qualifiers of one sweep mostly
             range over a handful of variable sets — share the cone
             computation across them. *)
          let slices = ref [] in
          let slice_for rhs =
            let seed = Term.free_vars rhs in
            match
              List.find_opt (fun (s, _) -> Term.VarSet.equal s seed) !slices
            with
            | Some (_, lhs) -> lhs
            | None ->
                let lhs = slice_prepared prepared rhs in
                slices := (seed, lhs) :: !slices;
                lhs
          in
          let keep =
            List.filter
              (fun q ->
                stats.weaken_checks <- stats.weaken_checks + 1;
                Profile.incr "fixpoint.weaken_checks";
                let rhs = Term.subst m q in
                Discharge.valid (Term.mk_imp (slice_for rhs) rhs))
              conjuncts
          in
          if List.length keep <> List.length conjuncts then begin
            Hashtbl.replace sol k keep;
            true
          end
          else false)

(** Incremental variant of {!weaken_clause}, two refinements over the
    reference per-conjunct loop — both preserve the exact kept set, so
    the fixpoint (and hence the verdict) is identical:

    - {e query memo}: every decided implication is recorded (per
      slice) keyed by the query term; re-asking the same formula —
      whether by the same clause on a later pass, or by a sibling
      clause with identical hypotheses and goal (pre/post join-κ pairs
      produce many) — reuses the verdict (pure memoization of a
      deterministic query);
    - {e survivor batching}: a conjunct that survived an earlier
      evaluation is being re-checked only because its left-hand side
      lost hypotheses; almost all survive again. For survivors sharing
      the (structurally) same new left-hand side L,
      [valid (L ⇒ q₁ ∧ … ∧ qₙ)] holds iff every [valid (L ⇒ qᵢ)]
      does — one query covers the batch in the common all-survive
      case, and a failed or unprovable (incompleteness) batch bisects
      down to exactly the reference's single-conjunct queries.
      First-time conjuncts are checked individually: initial sweeps
      mostly {e knock out}, where batching only adds queries. *)
let weaken_clause_memo stats kenv (sol : solution)
    ~(qmemo : bool Term.Tbl.t) (memo : (Term.t, Term.t * bool) Hashtbl.t)
    (cl : Horn.clause) : bool =
  match cl.Horn.head with
  | Horn.Conc _ -> false
  | Horn.Kapp (k, args) -> (
      match Hashtbl.find_opt sol k with
      | None -> raise (Unbound_kvar k)
      | Some [] -> false
      | Some conjuncts ->
          let kv = Hashtbl.find kenv k in
          let m = List.map2 (fun (x, _) a -> (x, a)) kv.Horn.kparams args in
          let prepared = prepare_hyps kenv sol cl in
          let slices = ref [] in
          let slice_for rhs =
            let seed = Term.free_vars rhs in
            match
              List.find_opt (fun (s, _) -> Term.VarSet.equal s seed) !slices
            with
            | Some (_, lhs) -> lhs
            | None ->
                let lhs = slice_prepared prepared rhs in
                slices := (seed, lhs) :: !slices;
                lhs
          in
          let skip () =
            stats.reweaken_skipped <- stats.reweaken_skipped + 1;
            Profile.incr "fixpoint.reweaken_skipped"
          in
          let query lhs rhs =
            let f = Term.mk_imp lhs rhs in
            match Term.Tbl.find_opt qmemo f with
            | Some v ->
                skip ();
                v
            | None ->
                stats.weaken_checks <- stats.weaken_checks + 1;
                Profile.incr "fixpoint.weaken_checks";
                (* the batch already went through [pre_settle], so the
                   abstract environment has had its shot at this one *)
                let v = Solver.valid f in
                Term.Tbl.replace qmemo f v;
                v
          in
          let verdict : (Term.t, bool) Hashtbl.t =
            Hashtbl.create (List.length conjuncts)
          in
          (* Triage each conjunct: reuse the verdict when the query is
             unchanged since the last evaluation (clause memo) or was
             already decided for a sibling clause (query memo);
             otherwise bucket it by its (structural) left-hand side,
             buckets in first-seen order. *)
          let buckets : (Term.t * (Term.t * Term.t) list ref) list ref =
            ref []
          in
          List.iter
            (fun q ->
              let rhs = Term.subst m q in
              let lhs = slice_for rhs in
              match Hashtbl.find_opt memo q with
              | Some (lhs', v) when Term.equal lhs' lhs ->
                  skip ();
                  Hashtbl.replace verdict q v
              | _ -> (
                  match Term.Tbl.find_opt qmemo (Term.mk_imp lhs rhs) with
                  | Some v ->
                      skip ();
                      Hashtbl.replace verdict q v;
                      Hashtbl.replace memo q (lhs, v)
                  | None ->
                      let cell =
                        match
                          List.find_opt
                            (fun (l, _) -> Term.equal l lhs)
                            !buckets
                        with
                        | Some (_, c) -> c
                        | None ->
                            let c = ref [] in
                            buckets := !buckets @ [ (lhs, c) ];
                            c
                      in
                      cell := (q, rhs) :: !cell))
            conjuncts;
          (* Besides recording the verdict, mirror it under the
             singleton query so sibling clauses and later passes
             asking the same implication skip it. Batched sweeps are
             decided by the solver deciding exactly these singleton
             implications (see {!Flux_smt.Solver.first_invalid}), so
             the mirror records the solver's own answers. *)
          let settle lhs (q, rhs) v =
            Hashtbl.replace verdict q v;
            Hashtbl.replace memo q (lhs, v);
            Term.Tbl.replace qmemo (Term.mk_imp lhs rhs) v
          in
          (* Sweep a group sharing one left-hand side: each solver
             call either confirms every remaining conjunct (the common
             case once a κ's survivors cohere) or locates the next
             knockout, so an evaluation costs one call per knockout
             plus one. Conjuncts whose singleton query got decided
             along the way (duplicates under the same lhs) are settled
             from the query memo between calls. *)
          (* Settle members of a batch the abstract environment proves
             outright — discharge-true is a subset of solver-true, so
             pre-settling them as [true] leaves the batched sweep's
             verdicts (and hence the kept set) unchanged while
             shrinking the group the solver has to walk. Under
             crosscheck the solver is still consulted and its verdict
             recorded. *)
          let pre_settle lhs group =
            List.filter
              (fun (q, rhs) ->
                let f = Term.mk_imp lhs rhs in
                if Discharge.try_valid f then begin
                  (if !Discharge.crosscheck then begin
                     let v = Solver.valid f in
                     if not v then Profile.incr "absint.crosscheck_fail";
                     settle lhs (q, rhs) v
                   end
                   else settle lhs (q, rhs) true);
                  false
                end
                else true)
              group
          in
          let rec sweep lhs group =
            match group with
            | [] -> ()
            | [ (q, rhs) ] -> settle lhs (q, rhs) (query lhs rhs)
            | group -> (
                stats.weaken_checks <- stats.weaken_checks + 1;
                Profile.incr "fixpoint.weaken_checks";
                match Solver.first_invalid lhs (List.map snd group) with
                | None -> List.iter (fun m -> settle lhs m true) group
                | Some i ->
                    let rec cut i pre = function
                      | m :: rest when i > 0 -> cut (i - 1) (m :: pre) rest
                      | m :: rest ->
                          List.iter (fun m -> settle lhs m true) pre;
                          settle lhs m false;
                          rest
                      | [] -> []
                    in
                    let rest = cut i [] group in
                    let rest =
                      List.filter
                        (fun (q, rhs) ->
                          match
                            Term.Tbl.find_opt qmemo (Term.mk_imp lhs rhs)
                          with
                          | Some v ->
                              skip ();
                              settle lhs (q, rhs) v;
                              false
                          | None -> true)
                        rest
                    in
                    sweep lhs rest)
          in
          List.iter
            (fun (lhs, cell) -> sweep lhs (pre_settle lhs (List.rev !cell)))
            !buckets;
          let keep =
            List.filter (fun q -> Hashtbl.find verdict q) conjuncts
          in
          if List.length keep <> List.length conjuncts then begin
            Hashtbl.replace sol k keep;
            true
          end
          else false)

(** Final-check one concrete-head clause under the (final) solution. *)
let final_check stats kenv (sol : solution) (cl : Horn.clause) :
    failure option =
  match cl.Horn.head with
  | Horn.Kapp _ -> None
  | Horn.Conc rhs ->
      stats.final_checks <- stats.final_checks + 1;
      Profile.incr "fixpoint.final_checks";
      let lhs = sliced_lhs kenv sol cl rhs in
      if Discharge.valid (Term.mk_imp lhs rhs) then None
      else Some { f_tag = cl.Horn.tag; f_clause = cl; f_lhs = lhs; f_rhs = rhs }

(** The reference schedule: sweep every κ-headed clause until no
    solution changes, then check all concrete heads. Retained verbatim
    as the differential baseline for the incremental schedule. *)
let solve_clauses_full ?(qualifiers = Qualifier.default)
    ~(kvars : Horn.kvar list) (clauses : Horn.clause list) : result =
  Profile.time "fixpoint.solve_s" @@ fun () ->
  let stats = stats () in
  let kenv, sol = init_system ~qualifiers ~kvars clauses in
  let kclauses, cclauses =
    List.partition
      (fun cl -> match cl.Horn.head with Horn.Kapp _ -> true | _ -> false)
      clauses
  in
  let changed = ref true in
  while !changed do
    changed := false;
    stats.iterations <- stats.iterations + 1;
    Profile.incr "fixpoint.iterations";
    List.iter
      (fun cl -> if weaken_clause stats kenv sol cl then changed := true)
      kclauses
  done;
  let failures = List.filter_map (final_check stats kenv sol) cclauses in
  if failures = [] then Sat sol else Unsat (failures, sol)

(* -------------------------------------------------------------------- *)
(* Incremental (SCC-sliced) schedule                                     *)
(* -------------------------------------------------------------------- *)

type prep = {
  p_kenv : (string, Horn.kvar) Hashtbl.t;
  p_sol : solution;
      (** authoritative solution; extended slice by slice via
          {!apply_slice}. Workers never write it — {!run_slice} copies
          the entries it reads into a slice-local table. *)
  p_graph : Kgraph.t;
  p_failures : (int * failure) list ref;
      (** failing concrete heads with their original clause index *)
}

type slice_result = {
  sr_slice : int;
  sr_sols : (string * Term.t list) list;
      (** final conjuncts for the slice's own κs *)
  sr_failures : (int * failure) list;
}

let prepare ?(qualifiers = Qualifier.default) ~(kvars : Horn.kvar list)
    (clauses : Horn.clause list) : prep =
  Profile.time "fixpoint.solve_s" @@ fun () ->
  let kenv, sol = init_system ~qualifiers ~kvars clauses in
  let graph = Kgraph.build ~kvars clauses in
  let stats = stats () in
  stats.scc_count <- stats.scc_count + graph.Kgraph.n_sccs;
  Profile.add "fixpoint.scc_count" graph.Kgraph.n_sccs;
  { p_kenv = kenv; p_sol = sol; p_graph = graph; p_failures = ref [] }

let slice_count (p : prep) : int = Array.length p.p_graph.Kgraph.slices
let slice_level (p : prep) (i : int) : int =
  p.p_graph.Kgraph.slices.(i).Kgraph.sl_level
let slice_kvars (p : prep) (i : int) : string list =
  p.p_graph.Kgraph.slices.(i).Kgraph.sl_kvars

(** Rough work estimate for pool scheduling: conjuncts to weaken plus
    concrete heads to check. *)
let slice_size (p : prep) (i : int) : int =
  let sl = p.p_graph.Kgraph.slices.(i) in
  List.fold_left
    (fun acc k ->
      acc + List.length (try Hashtbl.find p.p_sol k with Not_found -> []))
    (List.length sl.Kgraph.sl_cclauses)
    sl.Kgraph.sl_kvars

(** Deterministic rendering of everything a slice's result depends on
    besides the qualifier set: the slice's κ declarations, its clauses
    (tags excluded — {!Horn.pp_clause} does not print them, so
    renumbering obligations elsewhere in a function cannot spoil the
    key), and the final solutions of the external κs it reads. Used by
    the engine as slice-level cache-key material. *)
let slice_fingerprint (p : prep) (i : int) : string =
  let sl = p.p_graph.Kgraph.slices.(i) in
  let buf = Buffer.create 512 in
  List.iter
    (fun k ->
      let kv = Hashtbl.find p.p_kenv k in
      Buffer.add_string buf
        (Printf.sprintf "k %s/%d" kv.Horn.kname kv.Horn.kvalues);
      List.iter
        (fun (x, s) ->
          Buffer.add_string buf
            (Format.asprintf " (%s:%a)" x Flux_smt.Sort.pp s))
        kv.Horn.kparams;
      Buffer.add_char buf '\n')
    sl.Kgraph.sl_kvars;
  List.iter
    (fun (_, cl) ->
      Buffer.add_string buf (Format.asprintf "c %a\n" Horn.pp_clause cl))
    (sl.Kgraph.sl_kclauses @ sl.Kgraph.sl_cclauses);
  List.iter
    (fun k ->
      let conjuncts = try Hashtbl.find p.p_sol k with Not_found -> [] in
      Buffer.add_string buf
        (Format.asprintf "x %s := %a\n" k Term.pp (Term.mk_and conjuncts)))
    sl.Kgraph.sl_ext_kvars;
  Buffer.contents buf

(** Solve one slice: weaken its κ-headed clauses to their local
    fixpoint, re-evaluating a clause only when a κ in its hypotheses
    shrank since the clause's last evaluation, then final-check the
    slice's concrete heads. Reads (but never writes) [p.p_sol]; every
    predecessor slice must have been applied first. *)
let run_slice (p : prep) (i : int) : slice_result =
  Profile.time "fixpoint.solve_s" @@ fun () ->
  let stats = stats () in
  let sl = p.p_graph.Kgraph.slices.(i) in
  (* Slice-local working solution: own κs (mutated) plus the external
     κs the slice reads (final, never mutated). *)
  let wsol : solution = Hashtbl.create 16 in
  let import k =
    match Hashtbl.find_opt p.p_sol k with
    | Some conjuncts -> Hashtbl.replace wsol k conjuncts
    | None -> ()
  in
  List.iter import sl.Kgraph.sl_kvars;
  List.iter import sl.Kgraph.sl_ext_kvars;
  let kcls = Array.of_list sl.Kgraph.sl_kclauses in
  let n = Array.length kcls in
  (* Shrink counters for the slice's own κs; external κs are final. A
     clause whose hypothesis κs all kept their counter since its last
     evaluation has an unchanged left-hand side, and its surviving
     conjuncts were already validated against it — skip it. *)
  let own = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace own k ()) sl.Kgraph.sl_kvars;
  let version : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let ver k = Option.value (Hashtbl.find_opt version k) ~default:0 in
  let hyp_ks =
    Array.map (fun (_, cl) -> Kgraph.hyp_kvars own cl) kcls
  in
  let last : int list option array = Array.make n None in
  let memos = Array.init n (fun _ -> Hashtbl.create 32) in
  (* Slice-global query-dedup memo: sibling clauses (e.g. pre/post κ
     pairs of the same join) and later passes frequently re-ask
     byte-identical implications. *)
  let qmemo : bool Term.Tbl.t = Term.Tbl.create 256 in
  let changed = ref true in
  while !changed do
    changed := false;
    stats.iterations <- stats.iterations + 1;
    Profile.incr "fixpoint.iterations";
    for j = 0 to n - 1 do
      let _, cl = kcls.(j) in
      let cur = List.map ver hyp_ks.(j) in
      match last.(j) with
      | Some seen when seen = cur ->
          stats.reweaken_skipped <- stats.reweaken_skipped + 1;
          Profile.incr "fixpoint.reweaken_skipped"
      | _ ->
          last.(j) <- Some cur;
          if weaken_clause_memo stats p.p_kenv wsol ~qmemo memos.(j) cl
          then begin
            (match cl.Horn.head with
            | Horn.Kapp (k, _) -> Hashtbl.replace version k (ver k + 1)
            | Horn.Conc _ -> ());
            changed := true
          end
    done
  done;
  let failures =
    List.filter_map
      (fun (idx, cl) ->
        Option.map
          (fun f -> (idx, f))
          (final_check stats p.p_kenv wsol cl))
      sl.Kgraph.sl_cclauses
  in
  {
    sr_slice = i;
    sr_sols =
      List.map (fun k -> (k, Hashtbl.find wsol k)) sl.Kgraph.sl_kvars;
    sr_failures = failures;
  }

(** Merge a slice's result into the authoritative solution. Must be
    called from the coordinating domain, in any order consistent with
    slice dependencies. *)
let apply_slice (p : prep) (r : slice_result) : unit =
  List.iter (fun (k, conjuncts) -> Hashtbl.replace p.p_sol k conjuncts) r.sr_sols;
  p.p_failures := r.sr_failures @ !(p.p_failures)

(** Assemble the final verdict. Failures are re-sorted by original
    clause index, restoring exactly the order the reference schedule
    reports them in. *)
let finish (p : prep) : result =
  let failures =
    List.sort (fun (a, _) (b, _) -> compare a b) !(p.p_failures)
    |> List.map snd
  in
  if failures = [] then Sat p.p_sol else Unsat (failures, p.p_sol)

(** The incremental schedule, run to completion in-process: solve the
    slices sequentially in topological order. *)
let solve_clauses_incremental ?(qualifiers = Qualifier.default)
    ~(kvars : Horn.kvar list) (clauses : Horn.clause list) : result =
  let p = prepare ~qualifiers ~kvars clauses in
  for i = 0 to slice_count p - 1 do
    apply_slice p (run_slice p i)
  done;
  finish p

(** Solve a set of flat clauses over the given κ declarations,
    dispatching on {!incremental_enabled}. *)
let solve_clauses ?(qualifiers = Qualifier.default)
    ~(kvars : Horn.kvar list) (clauses : Horn.clause list) : result =
  if !incremental_enabled then
    solve_clauses_incremental ~qualifiers ~kvars clauses
  else solve_clauses_full ~qualifiers ~kvars clauses

(** Solve a nested constraint (flattens first). *)
let solve ?(qualifiers = Qualifier.default) ~(kvars : Horn.kvar list)
    (c : Horn.cstr) : result =
  solve_clauses ~qualifiers ~kvars (Horn.flatten c)

(** Evaluate a single clause under a (final) solution, without touching
    it: substitute the solution into hypotheses and head, slice, and ask
    the solver whether the implication is valid. Used by lint passes to
    test side conditions (e.g. overflow bounds) against the fixpoint
    solution the checker already computed. Raises {!Unbound_kvar} if the
    head applies a κ missing from the declarations or solution. *)
let clause_query ~(kvars : Horn.kvar list) (sol : solution)
    (cl : Horn.clause) : Term.t =
  let kenv = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace kenv kv.Horn.kname kv) kvars;
  let rhs = apply_head kenv sol cl.Horn.head in
  let lhs = sliced_lhs kenv sol cl rhs in
  Term.mk_imp lhs rhs

let check_clause ~(kvars : Horn.kvar list) (sol : solution)
    (cl : Horn.clause) : bool =
  Discharge.valid (clause_query ~kvars sol cl)

(** Re-check every clause of a system under a claimed solution,
    returning the ones that fail. This is the fixpoint self-check the
    fuzzer's third oracle runs: a [Sat] answer from {!solve_clauses}
    promises that substituting the solution into each clause yields a
    valid implication, and this function re-establishes that promise
    clause by clause, independently of the weakening loop's bookkeeping
    (in particular of its incremental "which-clause-needs-revisiting"
    worklist). *)
let validate_solution ~(kvars : Horn.kvar list) (sol : solution)
    (clauses : Horn.clause list) : Horn.clause list =
  List.filter (fun cl -> not (check_clause ~kvars sol cl)) clauses

(** Pretty-print a solution (for tests and [--dump-solution]). *)
let pp_solution fmt (sol : solution) =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) sol []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (k, conjuncts) ->
      Format.fprintf fmt "%s := %a@." k Term.pp (Term.mk_and conjuncts))
    entries
