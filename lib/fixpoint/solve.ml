(** The liquid fixpoint solver: predicate abstraction by iterative
    weakening (Rondon et al. 2008; Cosman & Jhala 2017).

    Each κ variable starts at the conjunction of all sort-correct
    qualifier instantiations; clauses with κ heads repeatedly knock out
    conjuncts that are not implied by their hypotheses until a fixpoint
    is reached. The result is the strongest solution expressible in the
    qualifier lattice; the remaining concrete-head clauses are then
    checked once under it. *)

open Flux_smt

type solution = (string, Term.t list) Hashtbl.t
(** κ name → conjuncts over the κ's formal parameters *)

type failure = {
  f_tag : int;  (** caller-side tag of the failing head *)
  f_clause : Horn.clause;
  f_lhs : Term.t;  (** hypotheses after solution substitution *)
  f_rhs : Term.t;
}

type result = Sat of solution | Unsat of failure list * solution

type stats = {
  mutable iterations : int;
  mutable weaken_checks : int;
  mutable final_checks : int;
}

(* Domain-local, like the solver's stats: each domain running parallel
   per-function checks accumulates its own counters. *)
let stats_dls : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { iterations = 0; weaken_checks = 0; final_checks = 0 })

let stats () = Domain.DLS.get stats_dls

let reset_stats () =
  let stats = stats () in
  stats.iterations <- 0;
  stats.weaken_checks <- 0;
  stats.final_checks <- 0

(** Substitute the current solution into a predicate, yielding a
    concrete term. *)
let apply_pred (kenv : (string, Horn.kvar) Hashtbl.t) (sol : solution)
    (p : Horn.pred) : Term.t =
  match p with
  | Horn.Conc t -> t
  | Horn.Kapp (k, args) -> (
      match (Hashtbl.find_opt kenv k, Hashtbl.find_opt sol k) with
      | Some kv, Some conjuncts ->
          let m =
            try List.map2 (fun (x, _) a -> (x, a)) kv.Horn.kparams args
            with Invalid_argument _ ->
              invalid_arg
                (Printf.sprintf "kvar %s applied to %d args, expects %d" k
                   (List.length args)
                   (List.length kv.Horn.kparams))
          in
          Term.mk_and (List.map (Term.subst m) conjuncts)
      | _ -> Term.tt)

(** Cone-of-influence slicing: keep only the hypotheses transitively
    sharing a variable with the goal. Dropping hypotheses weakens the
    left-hand side, so slicing is sound (it can only make the validity
    check fail, never succeed spuriously). Disabled for variable-free
    goals (e.g. [false] for unreachable code), which depend on the whole
    path condition. *)
let slice_enabled = ref true

(** Pre-expand and flatten a clause's hypotheses under the current
    solution, tagging each conjunct with its free variables; shared by
    all the per-qualifier slices of one clause. *)
let prepare_hyps kenv sol (c : Horn.clause) : (Term.t * Term.VarSet.t) list =
  List.map (apply_pred kenv sol) c.Horn.hyps
  |> List.concat_map (function Term.And ts -> ts | t -> [ t ])
  |> List.map (fun h -> (h, Term.free_vars h))

(** Cone-of-influence slice of prepared hypotheses w.r.t. [rhs], via
    the shared {!Term.cone_of_influence} worklist. *)
let slice_prepared (hyps : (Term.t * Term.VarSet.t) list) (rhs : Term.t) :
    Term.t =
  if not !slice_enabled then Term.mk_and (List.map fst hyps)
  else
    let seed = Term.free_vars rhs in
    if Term.VarSet.is_empty seed then Term.mk_and (List.map fst hyps)
    else Term.mk_and (Term.cone_of_influence hyps seed)

let sliced_lhs kenv sol (c : Horn.clause) (rhs : Term.t) : Term.t =
  slice_prepared (prepare_hyps kenv sol c) rhs

(** Solve a set of flat clauses over the given κ declarations. *)
let solve_clauses ?(qualifiers = Qualifier.default) ~(kvars : Horn.kvar list)
    (clauses : Horn.clause list) : result =
  Profile.time "fixpoint.solve_s" @@ fun () ->
  let stats = stats () in
  let kenv = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace kenv kv.Horn.kname kv) kvars;
  (* Initial solution: all qualifier instantiations. *)
  let sol : solution = Hashtbl.create 16 in
  List.iter
    (fun kv ->
      Hashtbl.replace sol kv.Horn.kname
        (Qualifier.instantiate_all ~values:kv.Horn.kvalues qualifiers
           kv.Horn.kparams))
    kvars;
  (* κ-headed and concrete-headed clauses. *)
  let kclauses, cclauses =
    List.partition
      (fun cl -> match cl.Horn.head with Horn.Kapp _ -> true | _ -> false)
      clauses
  in
  (* Iterative weakening. *)
  let changed = ref true in
  while !changed do
    changed := false;
    stats.iterations <- stats.iterations + 1;
    Profile.incr "fixpoint.iterations";
    List.iter
      (fun cl ->
        match cl.Horn.head with
        | Horn.Kapp (k, args) -> (
            match Hashtbl.find_opt sol k with
            | None | Some [] -> ()
            | Some conjuncts ->
                let kv = Hashtbl.find kenv k in
                let m =
                  List.map2 (fun (x, _) a -> (x, a)) kv.Horn.kparams args
                in
                let prepared = prepare_hyps kenv sol cl in
                (* The slice depends on the goal only through its
                   free-variable set, and the qualifiers of one sweep
                   mostly range over a handful of variable sets — share
                   the cone computation across them. *)
                let slices = ref [] in
                let slice_for rhs =
                  let seed = Term.free_vars rhs in
                  match
                    List.find_opt (fun (s, _) -> Term.VarSet.equal s seed) !slices
                  with
                  | Some (_, lhs) -> lhs
                  | None ->
                      let lhs = slice_prepared prepared rhs in
                      slices := (seed, lhs) :: !slices;
                      lhs
                in
                let keep =
                  List.filter
                    (fun q ->
                      stats.weaken_checks <- stats.weaken_checks + 1;
                      Profile.incr "fixpoint.weaken_checks";
                      let rhs = Term.subst m q in
                      Solver.valid (Term.mk_imp (slice_for rhs) rhs))
                    conjuncts
                in
                if List.length keep <> List.length conjuncts then begin
                  Hashtbl.replace sol k keep;
                  changed := true
                end)
        | Horn.Conc _ -> ())
      kclauses
  done;
  (* Final check of concrete heads. *)
  let failures =
    List.filter_map
      (fun cl ->
        match cl.Horn.head with
        | Horn.Conc rhs ->
            stats.final_checks <- stats.final_checks + 1;
            Profile.incr "fixpoint.final_checks";
            let lhs = sliced_lhs kenv sol cl rhs in
            if Solver.valid (Term.mk_imp lhs rhs) then None
            else Some { f_tag = cl.Horn.tag; f_clause = cl; f_lhs = lhs; f_rhs = rhs }
        | Horn.Kapp _ -> None)
      cclauses
  in
  if failures = [] then Sat sol else Unsat (failures, sol)

(** Solve a nested constraint (flattens first). *)
let solve ?(qualifiers = Qualifier.default) ~(kvars : Horn.kvar list)
    (c : Horn.cstr) : result =
  solve_clauses ~qualifiers ~kvars (Horn.flatten c)

(** Evaluate a single clause under a (final) solution, without touching
    it: substitute the solution into hypotheses and head, slice, and ask
    the solver whether the implication is valid. Used by lint passes to
    test side conditions (e.g. overflow bounds) against the fixpoint
    solution the checker already computed. *)
let check_clause ~(kvars : Horn.kvar list) (sol : solution)
    (cl : Horn.clause) : bool =
  let kenv = Hashtbl.create 16 in
  List.iter (fun kv -> Hashtbl.replace kenv kv.Horn.kname kv) kvars;
  let rhs = apply_pred kenv sol cl.Horn.head in
  let lhs = sliced_lhs kenv sol cl rhs in
  Solver.valid (Term.mk_imp lhs rhs)

(** Re-check every clause of a system under a claimed solution,
    returning the ones that fail. This is the fixpoint self-check the
    fuzzer's third oracle runs: a [Sat] answer from {!solve_clauses}
    promises that substituting the solution into each clause yields a
    valid implication, and this function re-establishes that promise
    clause by clause, independently of the weakening loop's bookkeeping
    (in particular of its incremental "which-clause-needs-revisiting"
    worklist). *)
let validate_solution ~(kvars : Horn.kvar list) (sol : solution)
    (clauses : Horn.clause list) : Horn.clause list =
  List.filter (fun cl -> not (check_clause ~kvars sol cl)) clauses

(** Pretty-print a solution (for tests and [--dump-solution]). *)
let pp_solution fmt (sol : solution) =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) sol []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (k, conjuncts) ->
      Format.fprintf fmt "%s := %a@." k Term.pp (Term.mk_and conjuncts))
    entries
