(** The liquid fixpoint solver: predicate abstraction by iterative
    weakening (Rondon et al. 2008; Cosman & Jhala 2017).

    Each κ variable starts at the conjunction of all sort-correct
    qualifier instantiations; clauses with κ heads repeatedly knock out
    conjuncts not implied by their hypotheses until a fixpoint is
    reached (the strongest solution in the qualifier lattice); the
    remaining concrete-head clauses are then checked under it.

    Two equivalent schedules are provided: the reference full sweep
    ({!solve_clauses_full}) and the default incremental one
    ({!solve_clauses_incremental}) that solves the κ-dependency graph
    SCC by SCC in topological order ({!Kgraph}), re-weakening a clause
    only when a κ hypothesis shrank. Both converge to the same fixpoint
    and report identical verdicts, solutions and failure order. *)

open Flux_smt

type solution = (string, Term.t list) Hashtbl.t
(** κ name → solution conjuncts over the κ's formal parameters. *)

(** A concrete-head clause that failed under the final solution. *)
type failure = {
  f_tag : int;  (** caller-side tag of the failing head *)
  f_clause : Horn.clause;
  f_lhs : Term.t;  (** hypotheses after solution substitution *)
  f_rhs : Term.t;
}

type result = Sat of solution | Unsat of failure list * solution

exception Unbound_kvar of string
(** Raised when a clause's {e head} applies an undeclared κ (a ⊤
    default there would make the clause vacuously valid and mask a
    missing declaration). Undeclared κs in hypothesis position still
    default to ⊤, which only weakens the left-hand side and is sound. *)

type stats = {
  mutable iterations : int;
  mutable weaken_checks : int;
  mutable final_checks : int;
  mutable scc_count : int;
  mutable reweaken_skipped : int;
      (** clause evaluations skipped because no κ hypothesis shrank *)
}

val stats : unit -> stats
(** The calling domain's fixpoint statistics (domain-local, like
    {!Flux_smt.Solver.stats}). *)

val reset_stats : unit -> unit

val slice_enabled : bool ref
(** Cone-of-influence slicing of clause hypotheses (default [true];
    sound either way, large speedup on join-heavy constraints). *)

val incremental_enabled : bool ref
(** Schedule selector for {!solve_clauses} (default [true] =
    incremental). Read once per solve; flip it only from a single
    domain (CLI flag, benchmarks, tests) — parallel fuzz/engine code
    must instead call the two schedules explicitly. *)

val solve_clauses :
  ?qualifiers:Qualifier.t list ->
  kvars:Horn.kvar list ->
  Horn.clause list ->
  result
(** Solve flat clauses with the schedule selected by
    {!incremental_enabled}. *)

val solve_clauses_full :
  ?qualifiers:Qualifier.t list ->
  kvars:Horn.kvar list ->
  Horn.clause list ->
  result
(** The reference schedule: sweep every κ-headed clause until nothing
    changes. Retained as the differential baseline. *)

val solve_clauses_incremental :
  ?qualifiers:Qualifier.t list ->
  kvars:Horn.kvar list ->
  Horn.clause list ->
  result
(** The incremental SCC-sliced schedule, run to completion
    in-process. *)

val solve :
  ?qualifiers:Qualifier.t list -> kvars:Horn.kvar list -> Horn.cstr -> result
(** Solve a nested constraint (flattens first). *)

(** {2 Slice-level API}

    The incremental schedule, exposed one SCC slice at a time so the
    engine can pool independent slices across functions and cache
    per-slice results. Protocol: {!prepare}; then for each slice in an
    order consistent with {!slice_level} (dependencies first), either
    {!run_slice} (pure w.r.t. the prep — safe to run on a worker
    domain) or rebuild a {!slice_result} from a cache hit, and
    {!apply_slice} it from the coordinating domain; finally
    {!finish}. *)

type prep

type slice_result = {
  sr_slice : int;
  sr_sols : (string * Term.t list) list;
      (** final conjuncts for the slice's own κs *)
  sr_failures : (int * failure) list;
      (** failing concrete heads with their original clause index *)
}

val prepare :
  ?qualifiers:Qualifier.t list ->
  kvars:Horn.kvar list ->
  Horn.clause list ->
  prep
(** Initialize the solution and build the κ-dependency graph. Raises
    {!Unbound_kvar} on undeclared head κs. *)

val slice_count : prep -> int
val slice_level : prep -> int -> int
val slice_kvars : prep -> int -> string list

val slice_size : prep -> int -> int
(** Rough work estimate (conjuncts to weaken + concrete heads to
    check) for pool scheduling. *)

val slice_fingerprint : prep -> int -> string
(** Deterministic rendering of everything the slice's result depends on
    besides the qualifier set: κ declarations, clauses (tags excluded)
    and the final solutions of external κs. Only valid once every
    predecessor slice has been applied. Cache-key material. *)

val run_slice : prep -> int -> slice_result
(** Solve one slice (weaken own κ clauses to their local fixpoint with
    shrink-driven skipping, then final-check its concrete heads). Every
    predecessor slice must have been applied first. *)

val apply_slice : prep -> slice_result -> unit
(** Merge a slice result into the authoritative solution (coordinator
    only). *)

val finish : prep -> result
(** Assemble the verdict; failures are sorted back into input-clause
    order, matching the reference schedule exactly. *)

val clause_query : kvars:Horn.kvar list -> solution -> Horn.clause -> Term.t
(** The exact implication {!check_clause} decides for this clause under
    this solution — hypotheses with the solution substituted in, sliced
    to the head's cone of influence. Exposed so certifying callers
    ([--certify]) can hand the very same term to [Solver.certify] and
    later replay the stored proof against it. Raises {!Unbound_kvar} on
    an undeclared head κ. *)

val check_clause : kvars:Horn.kvar list -> solution -> Horn.clause -> bool
(** Evaluate one clause under a (final) solution without altering it:
    substitute the solution into hypotheses and head, slice, and report
    whether the implication is valid. Lets lint passes test side
    conditions against the solution the checker already computed.
    Raises {!Unbound_kvar} on an undeclared head κ. *)

val validate_solution :
  kvars:Horn.kvar list -> solution -> Horn.clause list -> Horn.clause list
(** Re-check every clause under a claimed solution and return the ones
    that fail. For any solution returned inside [Sat] this must be
    empty — the invariant the fuzzer's fixpoint self-check oracle
    enforces. *)

val pp_solution : Format.formatter -> solution -> unit
