(** The liquid fixpoint solver: predicate abstraction by iterative
    weakening (Rondon et al. 2008; Cosman & Jhala 2017).

    Each κ variable starts at the conjunction of all sort-correct
    qualifier instantiations; clauses with κ heads repeatedly knock out
    conjuncts not implied by their hypotheses until a fixpoint is
    reached (the strongest solution in the qualifier lattice); the
    remaining concrete-head clauses are then checked under it. *)

open Flux_smt

type solution = (string, Term.t list) Hashtbl.t
(** κ name → solution conjuncts over the κ's formal parameters. *)

(** A concrete-head clause that failed under the final solution. *)
type failure = {
  f_tag : int;  (** caller-side tag of the failing head *)
  f_clause : Horn.clause;
  f_lhs : Term.t;  (** hypotheses after solution substitution *)
  f_rhs : Term.t;
}

type result = Sat of solution | Unsat of failure list * solution

type stats = {
  mutable iterations : int;
  mutable weaken_checks : int;
  mutable final_checks : int;
}

val stats : unit -> stats
(** The calling domain's fixpoint statistics (domain-local, like
    {!Flux_smt.Solver.stats}). *)

val reset_stats : unit -> unit

val slice_enabled : bool ref
(** Cone-of-influence slicing of clause hypotheses (default [true];
    sound either way, large speedup on join-heavy constraints). *)

val solve_clauses :
  ?qualifiers:Qualifier.t list ->
  kvars:Horn.kvar list ->
  Horn.clause list ->
  result

val solve :
  ?qualifiers:Qualifier.t list -> kvars:Horn.kvar list -> Horn.cstr -> result
(** Solve a nested constraint (flattens first). *)

val check_clause : kvars:Horn.kvar list -> solution -> Horn.clause -> bool
(** Evaluate one clause under a (final) solution without altering it:
    substitute the solution into hypotheses and head, slice, and report
    whether the implication is valid. Lets lint passes test side
    conditions against the solution the checker already computed. *)

val validate_solution :
  kvars:Horn.kvar list -> solution -> Horn.clause list -> Horn.clause list
(** Re-check every clause under a claimed solution and return the ones
    that fail. For any solution returned inside [Sat] this must be
    empty — the invariant the fuzzer's fixpoint self-check oracle
    enforces. *)

val pp_solution : Format.formatter -> solution -> unit
