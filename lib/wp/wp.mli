(** The Prusti-style program-logic baseline verifier (§5 of the paper).

    Forward symbolic execution over MIR with user-supplied
    [body_invariant!] loop invariants as cut points; vectors are modeled
    with uninterpreted [len]/[sel] plus McCarthy update axioms;
    universally quantified contracts are discharged by staged,
    goal-directed quantifier instantiation. *)

module Ast = Flux_syntax.Ast

type error = {
  err_fn : string;
  err_span : Ast.span;
  err_msg : string;
  err_witness : (string * Flux_smt.Eval.value) list option;
      (** verified falsifying assignment for the failed VC's symbolic
          variables, present under [--certify] *)
}

val pp_error : Format.formatter -> error -> unit

type fn_report = {
  fr_name : string;
  fr_errors : error list;
  fr_vcs : int;  (** verification conditions discharged *)
  fr_time : float;
  fr_goals : (int * Flux_smt.Term.t) list;
      (** under [--certify]: the exact implication discharged for each
          non-trivial VC, keyed by VC index (empty otherwise) *)
}

val fn_ok : fn_report -> bool

exception Wp_error of string * Ast.span
(** Structural problems (constructs the baseline does not model);
    converted into error reports by [verify_body]. *)

val inst_rounds : int ref
(** Quantifier-instantiation rounds per VC (default 2). *)

val inst_cap : int ref
(** Cap on candidate trigger terms per VC (default 24). *)

val check_underflow : bool ref
(** Check usize subtractions for underflow (default [true]), matching
    the Flux checker's configuration. *)

type report = { rp_fns : fn_report list; rp_time : float }

val report_ok : report -> bool
val report_errors : report -> error list

val verify_body :
  ?certify:bool -> Ast.program -> Ast.fn_def -> Flux_mir.Ir.body -> fn_report
(** With [~certify:true], additionally record the discharged implication
    of every non-trivial VC in [fr_goals] and attach a verified
    counterexample assignment ([err_witness]) to each failure. *)

val verify_program_ast : ?certify:bool -> Ast.program -> report

val verify_source : ?certify:bool -> string -> report
(** Parse, typecheck, lower and verify a source string. *)
