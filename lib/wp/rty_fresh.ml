(* Domain-local, and reset at each function entry by [Wp.verify_body]:
   WP-generated names only need to be unique within one function's
   VCs, and per-function determinism keeps parallel runs byte-identical
   to sequential ones. *)
let counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh prefix =
  let c = Domain.DLS.get counter in
  incr c;
  Printf.sprintf "%s!w%d" prefix !c

let reset () = Domain.DLS.get counter := 0
