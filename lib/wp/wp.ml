(** A Prusti-style program-logic verifier over the same MIR — the
    baseline of the paper's evaluation (§5).

    The verifier performs forward symbolic execution with user-supplied
    loop invariants ([body_invariant!]) as cut points, models vectors
    with uninterpreted [len]/[sel] functions plus McCarthy-style update
    axioms, and supports the universally quantified specifications
    Prusti needs for element facts ([forall(|x: usize| ...)],
    [old(..)], [result], [x.lookup(i)], [x.row_len(r)]). Quantifiers
    are discharged by E-matching-lite: each verification condition
    instantiates the in-scope universal facts at the ground index terms
    occurring in the VC, for a configurable number of rounds.

    This mirrors the two costs the paper attributes to program-logic
    verifiers: the {e annotation} cost (quantified loop invariants must
    be written by hand — the checker fails without them) and the
    {e solver} cost (quantifier instantiation makes the SMT queries
    much larger than Flux's quantifier-free ones). *)

open Flux_smt
module Ast = Flux_syntax.Ast
module Ir = Flux_mir.Ir
module Discharge = Flux_absint.Discharge
module IMap = Map.Make (Int)

type error = {
  err_fn : string;
  err_span : Ast.span;
  err_msg : string;
  err_witness : (string * Eval.value) list option;
      (** verified falsifying assignment for the failed VC's symbolic
          variables, present under [--certify] *)
}

let pp_witness fmt = function
  | Some ((_ :: _) as w) ->
      Format.fprintf fmt "@.    falsified by %s"
        (String.concat ", "
           (List.map
              (fun (x, v) -> Format.asprintf "%s = %a" x Eval.pp_value v)
              w))
  | Some [] | None -> ()

let pp_error fmt e =
  Format.fprintf fmt "%s:%a: %s%a" e.err_fn Ast.pp_span e.err_span e.err_msg
    pp_witness e.err_witness

type fn_report = {
  fr_name : string;
  fr_errors : error list;
  fr_vcs : int;
  fr_time : float;
  fr_goals : (int * Term.t) list;
      (** under [--certify]: the exact implication discharged for each
          non-trivial VC, keyed by VC index — the terms [Solver.certify]
          is later asked to prove (empty otherwise) *)
}

let fn_ok r = r.fr_errors = []

(** Instantiation rounds for universal facts. *)
let inst_rounds = ref 2

(** Cap on ground candidate terms per VC. *)
let inst_cap = ref 24

(** Check usize subtractions for underflow (see the matching flag in
    the Flux checker; both verifiers share the math-integer model). *)
let check_underflow = ref true

(* ------------------------------------------------------------------ *)
(* Symbolic values and state                                           *)
(* ------------------------------------------------------------------ *)

(** Path facts: ground formulas or universally quantified ones. *)
type fact = FGround of Term.t | FForall of (string * Sort.t) list * Term.t

(** A local's symbolic meaning: a value, or a reference to (a slot of)
    another local. *)
type sym =
  | SVal of Term.t
  | SRef of int * Term.t option
      (** reference to local root; [Some i] = reference to element [i]
          of the root vector *)

type state = {
  vals : sym IMap.t;
  facts : fact list;  (** reversed *)
}

exception Wp_error of string * Ast.span

let werr span fmt = Format.kasprintf (fun s -> raise (Wp_error (s, span))) fmt

let len_of v = Term.app "len" [ v ]
let sel v i = Term.app "sel" [ v; i ]

let fresh_val prefix = Term.var ~sort:Sort.Int (Rty_fresh.fresh prefix)

(* A tiny indirection so we can reuse the rtype fresh-name counter
   without depending on the whole checker. *)

(* ------------------------------------------------------------------ *)
(* Verifier context                                                    *)
(* ------------------------------------------------------------------ *)

type ck = {
  prog : Ast.program;
  body : Ir.body;
  fd : Ast.fn_def;
  mutable errors : error list;
  mutable vcs : int;
  (* loop bookkeeping *)
  preds : int list array;
  loop_blocks : (int, unit) Hashtbl.t array;  (** per header: natural loop *)
  mutable processed_headers : (int, unit) Hashtbl.t;
  mutable entry_env : (string * Term.t) list option;
      (** parameter values at entry, for [old(..)] in postconditions *)
  certify : bool;
  mutable goals : (int * Term.t) list;  (** discharged VCs, certify only *)
}

let add_error ?witness ck span msg =
  ck.errors <-
    {
      err_fn = ck.fd.Ast.fn_name;
      err_span = span;
      err_msg = msg;
      err_witness = witness;
    }
    :: ck.errors

(* ------------------------------------------------------------------ *)
(* Quantifier instantiation and VC checking                            *)
(* ------------------------------------------------------------------ *)

(** Collect integer-sorted candidate terms for instantiation: arguments
    of [sel] and [len], plus variables and small arithmetic subterms
    appearing in the formulas. *)
let rec collect_candidates (acc : (string, Term.t) Hashtbl.t) (t : Term.t) =
  (match t with
  | Term.App ("sel", [ _; i ]) -> Hashtbl.replace acc (Term.to_string i) i
  | _ -> ());
  match t with
  | Term.Var _ | Term.Int _ | Term.Real _ | Term.Bool _ -> ()
  | Term.Neg a | Term.Not a -> collect_candidates acc a
  | Term.Binop (_, a, b)
  | Term.Cmp (_, a, b)
  | Term.Eq (a, b)
  | Term.Ne (a, b)
  | Term.Imp (a, b)
  | Term.Iff (a, b) ->
      collect_candidates acc a;
      collect_candidates acc b
  | Term.And ts | Term.Or ts | Term.App (_, ts) ->
      List.iter (collect_candidates acc) ts
  | Term.Ite (a, b, c) ->
      collect_candidates acc a;
      collect_candidates acc b;
      collect_candidates acc c

(** Variables denoting containers in a formula: variables in the first
    (value) argument position of [sel]/[len] applications. Used for the
    relevance filter below — connecting quantified facts through shared
    scalars (like a common dimension [n]) would defeat the filter. *)
let rec container_vars (acc : (string, unit) Hashtbl.t) (t : Term.t) =
  (match t with
  | Term.App (_, a0 :: _) -> (
      match a0 with
      | Term.Var (x, _) -> Hashtbl.replace acc x ()
      | _ -> ())
  | Term.Eq (Term.App _, Term.Var (x, _)) | Term.Eq (Term.Var (x, _), Term.App _)
    ->
      (* a variable equated to a container read is itself a container
         alias (e.g. sel(v, i) = ret) *)
      Hashtbl.replace acc x ()
  | _ -> ());
  match t with
  | Term.Var _ | Term.Int _ | Term.Real _ | Term.Bool _ -> ()
  | Term.Neg a | Term.Not a -> container_vars acc a
  | Term.Binop (_, a, b)
  | Term.Cmp (_, a, b)
  | Term.Eq (a, b)
  | Term.Ne (a, b)
  | Term.Imp (a, b)
  | Term.Iff (a, b) ->
      container_vars acc a;
      container_vars acc b
  | Term.And ts | Term.Or ts | Term.App (_, ts) ->
      List.iter (container_vars acc) ts
  | Term.Ite (a, b, c) ->
      container_vars acc a;
      container_vars acc b;
      container_vars acc c

let container_var_set (t : Term.t) : Term.VarSet.t =
  let tbl = Hashtbl.create 8 in
  container_vars tbl t;
  Hashtbl.fold (fun x () acc -> Term.VarSet.add x acc) tbl Term.VarSet.empty

(** Check a verification condition: do the path facts entail [goal]? *)
let check_vc ck (st : state) span ~(what : string) (goal : Term.t) : unit =
  ck.vcs <- ck.vcs + 1;
  Profile.incr "wp.vcs";
  match goal with
  | Term.Bool true -> ()
  | _ ->
      let grounds =
        List.filter_map (function FGround t -> Some t | _ -> None) st.facts
      in
      let foralls =
        List.filter_map (function FForall (b, t) -> Some (b, t) | _ -> None)
          st.facts
      in
      (* Staged, goal-directed instantiation: first try the ground
         facts alone (most VCs are plain arithmetic), then add one
         round of instantiations of the universal facts at the index
         terms appearing in the goal, then a second round at the terms
         the first round pulled in. *)
      let dbg = Sys.getenv_opt "WP_DEBUG" <> None in
      let t0 = if dbg then Unix.gettimeofday () else 0.0 in
      (* Relevance filter: only universal facts transitively connected
         to the goal's variables (through ground facts or other
         universals) are instantiated. Quantified facts about unrelated
         containers would otherwise flood the boolean skeleton and blow
         up the DPLL search. *)
      let foralls, grounds =
        let seed0 = container_var_set goal in
        if Term.VarSet.is_empty seed0 then
          (* scalar goal: no container chain to follow — keep everything
             (no sel-argument triggers exist, so instantiation stays
             empty and the query small) *)
          (foralls, grounds)
        else
        let seed = ref seed0 in
        let tagged_g =
          List.map (fun g -> (g, container_var_set g)) grounds
        in
        let tagged_f =
          List.map
            (fun (bs, b) ->
              let fv = container_var_set b in
              let fv =
                List.fold_left (fun fv (x, _) -> Term.VarSet.remove x fv) fv bs
              in
              ((bs, b), fv, ref false))
            foralls
        in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (_, fv) ->
              if
                Term.VarSet.exists (fun v -> Term.VarSet.mem v !seed) fv
                && not (Term.VarSet.subset fv !seed)
              then begin
                seed := Term.VarSet.union fv !seed;
                changed := true
              end)
            tagged_g;
          List.iter
            (fun (_, fv, kept) ->
              if
                (not !kept)
                && Term.VarSet.exists (fun v -> Term.VarSet.mem v !seed) fv
              then begin
                kept := true;
                seed := Term.VarSet.union fv !seed;
                changed := true
              end)
            tagged_f
        done;
        let kept_foralls =
          List.filter_map
            (fun (f, _, kept) -> if !kept then Some f else None)
            tagged_f
        in
        (* ground facts about unrelated containers only bloat the
           Ackermann expansion; scalar-only facts are kept *)
        let kept_grounds =
          List.filter_map
            (fun (g, cvs) ->
              if
                Term.VarSet.is_empty cvs
                || Term.VarSet.exists (fun v -> Term.VarSet.mem v !seed) cvs
              then Some g
              else None)
            tagged_g
        in
        (kept_foralls, kept_grounds)
      in
      let instantiated = ref [] in
      let seen = Hashtbl.create 64 in
      let candidates = Hashtbl.create 64 in
      collect_candidates candidates goal;
      let instantiate_round () =
        let cands =
          Hashtbl.fold (fun _ t acc -> t :: acc) candidates []
          |> List.filteri (fun i _ -> i < !inst_cap)
        in
        List.iter
          (fun (binders, body) ->
            let rec combos = function
              | [] -> [ [] ]
              | (x, s) :: rest ->
                  let tails = combos rest in
                  List.concat_map
                    (fun c ->
                      if Sort.equal s Sort.Int then
                        List.map (fun tl -> (x, c) :: tl) tails
                      else [])
                    cands
            in
            List.iter
              (fun m ->
                let inst = Term.subst m body in
                let key = Term.to_string inst in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  instantiated := inst :: !instantiated;
                  collect_candidates candidates inst
                end)
              (combos binders))
          foralls
      in
      let rec attempt round =
        let hyps = grounds @ !instantiated in
        (* same implication [entails_sliced] decides, but the abstract
           environment gets first crack at it (zero SMT when it hits) *)
        if Discharge.valid (Solver.sliced_implication hyps goal) then Some hyps
        else if round < !inst_rounds && foralls <> [] then begin
          instantiate_round ();
          attempt (round + 1)
        end
        else None
      in
      if dbg then
        Format.eprintf "[VC %d %s] start: %s@?" ck.vcs what
          (Term.to_string goal);
      let proved = attempt 0 in
      let ok = proved <> None in
      (match proved with
      | Some hyps when ck.certify ->
          (* the exact (sliced) implication the solver just accepted —
             what [--certify] will hand to [Solver.certify] *)
          ck.goals <-
            (ck.vcs, Solver.sliced_implication hyps goal) :: ck.goals
      | _ -> ());
      if dbg then
        Format.eprintf " ground=%d inst=%d %s %.2fs@." (List.length grounds)
          (List.length !instantiated)
          (if ok then "ok" else "FAIL")
          (Unix.gettimeofday () -. t0);
      if (not ok) && Sys.getenv_opt "WP_DEBUG" = Some "2" then begin
        List.iter
          (fun h -> Format.eprintf "  hyp: %s@." (Term.to_string h))
          (grounds @ !instantiated);
        List.iter
          (fun (bs, b) ->
            Format.eprintf "  forall %s. %s@."
              (String.concat "," (List.map fst bs))
              (Term.to_string b))
          foralls
      end;
      if not ok then begin
        let witness =
          if ck.certify then begin
            let w =
              Solver.counterexample
                (Solver.sliced_implication (grounds @ !instantiated) goal)
            in
            if w <> None then Profile.incr "cert.cex";
            w
          end
          else None
        in
        add_error ?witness ck span
          (Printf.sprintf "%s: cannot prove %s" what (Term.to_string goal))
      end

let assume (st : state) (f : fact) : state = { st with facts = f :: st.facts }
let assume_t st t = if t = Term.tt then st else assume st (FGround t)

(* ------------------------------------------------------------------ *)
(* Specification expression evaluation                                 *)
(* ------------------------------------------------------------------ *)

(** Evaluate a specification expression to a term (and side universal
    facts when used in assumption position). [env] maps spec variable
    names to terms (function parameters, forall binders). *)
type spec_cx = {
  sc_env : (string * Term.t) list;
  sc_old : (string * Term.t) list option;  (** pre-state, for old() *)
  sc_result : Term.t option;
}

let rec eval_spec ck (cx : spec_cx) (e : Ast.expr) : Term.t =
  let span = e.Ast.e_span in
  match e.Ast.e with
  | Ast.EInt n -> Term.int n
  | Ast.EFloat f -> Term.real f
  | Ast.EBool b -> Term.Bool b
  | Ast.EVar x -> (
      match List.assoc_opt x cx.sc_env with
      | Some t -> t
      | None -> werr span "unbound variable %s in specification" x)
  | Ast.EResult -> (
      match cx.sc_result with
      | Some t -> t
      | None -> werr span "result is only allowed in postconditions")
  | Ast.EOld inner -> (
      match cx.sc_old with
      | Some old_env -> eval_spec ck { cx with sc_env = old_env; sc_old = None } inner
      | None ->
          (* old() in preconditions or invariants: identity *)
          eval_spec ck cx inner)
  | Ast.EBin (op, a, b) -> (
      let ta = eval_spec ck cx a and tb = eval_spec ck cx b in
      match op with
      | Ast.Add -> Term.add ta tb
      | Ast.Sub -> Term.sub ta tb
      | Ast.Mul -> Term.mul ta tb
      | Ast.Div -> Term.div ta tb
      | Ast.Rem -> Term.md ta tb
      | Ast.Lt -> Term.lt ta tb
      | Ast.Le -> Term.le ta tb
      | Ast.Gt -> Term.gt ta tb
      | Ast.Ge -> Term.ge ta tb
      | Ast.EqOp -> Term.eq ta tb
      | Ast.NeOp -> Term.ne ta tb
      | Ast.AndOp -> Term.mk_and [ ta; tb ]
      | Ast.OrOp -> Term.mk_or [ ta; tb ]
      | Ast.ImpOp -> Term.mk_imp ta tb)
  | Ast.EUn (Ast.Not, a) -> Term.mk_not (eval_spec ck cx a)
  | Ast.EUn (Ast.NegOp, a) -> Term.neg (eval_spec ck cx a)
  | Ast.EMethod (recv, "len", []) -> len_of (eval_spec ck cx recv)
  | Ast.EMethod (recv, "lookup", [ i ]) ->
      sel (eval_spec ck cx recv) (eval_spec ck cx i)
  | Ast.EMethod (recv, "row_len", [ i ]) ->
      len_of (sel (eval_spec ck cx recv) (eval_spec ck cx i))
  | Ast.EForall (binders, body) ->
      (* only usable via eval_spec_fact; inside a term position we
         conservatively reject *)
      ignore (binders, body);
      werr span "forall must appear at the top level of a specification"
  | Ast.ECall (f, args) ->
      (* uninterpreted specification function *)
      Term.app ("sf_" ^ f) (List.map (eval_spec ck cx) args)
  | Ast.EDeref a -> eval_spec ck cx a
  | _ -> werr span "unsupported specification expression"

(** Evaluate a spec expression into facts (splits conjunctions, keeps
    top-level foralls quantified). *)
let rec eval_spec_fact ck (cx : spec_cx) (e : Ast.expr) : fact list =
  match e.Ast.e with
  | Ast.EBin (Ast.AndOp, a, b) ->
      eval_spec_fact ck cx a @ eval_spec_fact ck cx b
  | Ast.EForall (binders, body) ->
      let bvars =
        List.map
          (fun (x, t) ->
            let s =
              match t with
              | Ast.TInt _ -> Sort.Int
              | Ast.TBool -> Sort.Bool
              | _ -> Sort.Int
            in
            (x, s))
          binders
      in
      let env' =
        List.map (fun (x, s) -> (x, Term.Var ("!q_" ^ x, s))) bvars @ cx.sc_env
      in
      let body_t = eval_spec ck { cx with sc_env = env' } body in
      [ FForall (List.map (fun (x, s) -> ("!q_" ^ x, s)) bvars, body_t) ]
  | _ -> [ FGround (eval_spec ck cx e) ]

(** Evaluate a spec expression into a single checkable term, flattening
    foralls by skolemization-on-the-check side is unsound; instead we
    check foralls by proving the body under fresh rigid binders. *)
let eval_spec_goals ck (cx : spec_cx) (e : Ast.expr) :
    [ `Goal of Term.t | `ForallGoal of (string * Sort.t) list * Term.t ] list =
  let rec go e =
    match e.Ast.e with
    | Ast.EBin (Ast.AndOp, a, b) -> go a @ go b
    | Ast.EForall (binders, body) ->
        let bvars =
          List.map
            (fun (x, t) ->
              let s =
                match t with Ast.TInt _ -> Sort.Int | Ast.TBool -> Sort.Bool | _ -> Sort.Int
              in
              (x, Rty_fresh.fresh ("sk_" ^ x), s))
            binders
        in
        let env' =
          List.map (fun (x, y, s) -> (x, Term.Var (y, s))) bvars @ cx.sc_env
        in
        let body_t = eval_spec ck { cx with sc_env = env' } body in
        [ `ForallGoal (List.map (fun (_, y, s) -> (y, s)) bvars, body_t) ]
    | _ -> [ `Goal (eval_spec ck cx e) ]
  in
  go e

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation of places and operands                          *)
(* ------------------------------------------------------------------ *)

let get_sym ck (st : state) span (l : int) : sym =
  match IMap.find_opt l st.vals with
  | Some s -> s
  | None -> werr span "local %s has no symbolic value" ck.body.Ir.mb_locals.(l).Ir.ld_name

(** The term denoted by a symbolic value (reads through references). *)
let rec sym_term ck (st : state) span (s : sym) : Term.t =
  match s with
  | SVal t -> t
  | SRef (root, None) -> sym_term ck st span (get_sym ck st span root)
  | SRef (root, Some i) ->
      sel (sym_term ck st span (get_sym ck st span root)) i

let place_sym ck (st : state) span (p : Ir.place) : sym =
  let rec go (s : sym) = function
    | [] -> s
    | Ir.PDeref :: rest -> (
        match s with
        | SRef (root, None) -> go (get_sym ck st span root) rest
        | SRef (root, Some i) ->
            go (SVal (sel (sym_term ck st span (get_sym ck st span root)) i)) rest
        | SVal v -> go (SVal v) rest (* value-modeled reference *))
    | Ir.PField _ :: _ ->
        werr span "the baseline verifier does not model struct fields directly"
  in
  go (get_sym ck st span p.Ir.base) p.Ir.projs

let operand_sym ck (st : state) span (op : Ir.operand) : sym =
  match op with
  | Ir.Const (Ir.CInt (n, _)) -> SVal (Term.int n)
  | Ir.Const (Ir.CBool b) -> SVal (Term.Bool b)
  | Ir.Const (Ir.CFloat f) -> SVal (Term.real f)
  | Ir.Const Ir.CUnit -> SVal (Term.int 0)
  | Ir.Copy p | Ir.Move p -> place_sym ck st span p

let operand_term ck st span op = sym_term ck st span (operand_sym ck st span op)

(** McCarthy update: produce a new version of [old_v] with slot [i] set
    to [e]; returns the new value and its defining facts. *)
let store_facts ~(old_v : Term.t) ~(new_v : Term.t) (i : Term.t) (e : Term.t) :
    fact list =
  let j = Term.var (Rty_fresh.fresh "!j") in
  [
    FGround (Term.eq (len_of new_v) (len_of old_v));
    FGround (Term.eq (sel new_v i) e);
    FForall
      ( [ (Term.to_string j, Sort.Int) ],
        Term.mk_imp
          (Term.mk_and
             [
               Term.le (Term.int 0) j;
               Term.lt j (len_of old_v);
               Term.ne j i;
             ])
          (Term.eq (sel new_v j) (sel old_v j)) );
  ]

(** Write a symbolic value through a place. *)
let write_place ck (st : state) span (p : Ir.place) (rhs : sym) : state =
  if p.Ir.projs = [] then { st with vals = IMap.add p.Ir.base rhs st.vals }
  else
    match (p.Ir.projs, get_sym ck st span p.Ir.base) with
    | [ Ir.PDeref ], SRef (root, None) ->
        { st with vals = IMap.add root rhs st.vals }
    | [ Ir.PDeref ], SRef (root, Some i) ->
        let old_v = sym_term ck st span (get_sym ck st span root) in
        let new_v = fresh_val "!v" in
        let e = sym_term ck st span rhs in
        let st = List.fold_left assume st (store_facts ~old_v ~new_v i e) in
        { st with vals = IMap.add root (SVal new_v) st.vals }
    | [ Ir.PDeref ], SVal _ ->
        (* ref parameter root: replace the pointee *)
        { st with vals = IMap.add p.Ir.base rhs st.vals }
    | _ -> werr span "unsupported write target in the baseline verifier"

(* ------------------------------------------------------------------ *)
(* Type facts                                                          *)
(* ------------------------------------------------------------------ *)

(** Well-formedness facts for a fresh value of a given Rust type:
    usizes and lengths are non-negative, recursively for vector
    elements. *)
let rec type_facts (ty : Ast.ty) (v : Term.t) : fact list =
  match ty with
  | Ast.TInt Ast.Usize -> [ FGround (Term.ge v (Term.int 0)) ]
  | Ast.TVec elt ->
      let base = [ FGround (Term.ge (len_of v) (Term.int 0)) ] in
      let j = Term.var (Rty_fresh.fresh "!j") in
      let elt_facts = type_facts elt (sel v j) in
      let quantified =
        List.filter_map
          (function
            | FGround body ->
                Some
                  (FForall
                     ( [ (Term.to_string j, Sort.Int) ],
                       Term.mk_imp
                         (Term.mk_and
                            [ Term.le (Term.int 0) j; Term.lt j (len_of v) ])
                         body ))
            | FForall _ -> None (* depth 2 facts are rarely needed *))
          elt_facts
      in
      base @ quantified
  | Ast.TRef (_, inner) -> type_facts inner v
  | _ -> []

let havoc_local ck (st : state) (l : int) : state =
  let decl = ck.body.Ir.mb_locals.(l) in
  let v = fresh_val ("!h_" ^ decl.Ir.ld_name) in
  let st = { st with vals = IMap.add l (SVal v) st.vals } in
  List.fold_left assume st (type_facts decl.Ir.ld_ty v)

(* ------------------------------------------------------------------ *)
(* Loop structure                                                      *)
(* ------------------------------------------------------------------ *)

(** Natural loop of header [h]: [h] plus the blocks that reach a back
    edge [p → h] (where [h] dominates [p]) without passing through
    [h]. *)
let natural_loop (_body : Ir.body) (preds : int list array)
    (dom : bool array array) (h : int) : (int, unit) Hashtbl.t =
  let loop = Hashtbl.create 8 in
  Hashtbl.replace loop h ();
  let back_sources = List.filter (fun p -> dom.(p).(h)) preds.(h) in
  let rec add b =
    if not (Hashtbl.mem loop b) then begin
      Hashtbl.replace loop b ();
      List.iter add preds.(b)
    end
  in
  List.iter add back_sources;
  loop

(** Locals assigned anywhere within the given block set. *)
let loop_defs (body : Ir.body) (loop : (int, unit) Hashtbl.t) : int list =
  let defs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun b () ->
      let blk = body.Ir.mb_blocks.(b) in
      List.iter
        (function
          | Ir.SAssign (p, rv, _) ->
              Hashtbl.replace defs p.Ir.base ();
              (* a mutable borrow taken inside the loop means its target
                 may be mutated (method receivers, get_mut stores) *)
              (match rv with
              | Ir.RRef (Flux_syntax.Ast.Mut, tgt) ->
                  Hashtbl.replace defs tgt.Ir.base ()
              | _ -> ())
          | _ -> ())
        blk.Ir.stmts;
      match blk.Ir.term with
      | Ir.TCall { tc_dest; _ } -> Hashtbl.replace defs tc_dest.Ir.base ()
      | _ -> ())
    loop;
  Hashtbl.fold (fun l () acc -> l :: acc) defs []

(** The [body_invariant!] expressions at the head of a block. *)
let invariants_of (body : Ir.body) (bb : int) : (Ast.expr * Ast.span) list =
  List.filter_map
    (function Ir.SInvariant (e, sp) -> Some (e, sp) | _ -> None)
    body.Ir.mb_blocks.(bb).Ir.stmts

(* ------------------------------------------------------------------ *)
(* Specification context helpers                                       *)
(* ------------------------------------------------------------------ *)

(** Environment mapping source-visible names to current values. *)
let name_env ck (st : state) span : (string * Term.t) list =
  let out = ref [] in
  Array.iteri
    (fun l (decl : Ir.local_decl) ->
      match decl.Ir.ld_kind with
      | Ir.KArg | Ir.KUser -> (
          match IMap.find_opt l st.vals with
          | Some s -> out := (decl.Ir.ld_name, sym_term ck st span s) :: !out
          | None -> ())
      | _ -> ())
    ck.body.Ir.mb_locals;
  !out

let check_spec_goals ck st span ~what (cx : spec_cx) (e : Ast.expr) : unit =
  List.iter
    (function
      | `Goal g -> check_vc ck st span ~what g
      | `ForallGoal (binders, body) ->
          (* prove the body for fresh rigid binders (non-negative, as
             they quantify over usize indices) *)
          let st' =
            List.fold_left
              (fun st (x, s) ->
                if Sort.equal s Sort.Int then
                  assume_t st (Term.ge (Term.var x) (Term.int 0))
                else st)
              st binders
          in
          check_vc ck st' span ~what body)
    (eval_spec_goals ck cx e)

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

(** Bounds obligation for a vector access. *)
let check_bounds ck st span ~what (i : Term.t) (v : Term.t) : unit =
  check_vc ck st span ~what (Term.ge i (Term.int 0));
  check_vc ck st span ~what (Term.lt i (len_of v))

(** The root local and slot of a receiver temp. *)
let receiver ck st span (op : Ir.operand) : int * Term.t option =
  match operand_sym ck st span op with
  | SRef (root, idx) -> (root, idx)
  | SVal _ -> werr span "receiver is not a tracked reference"

let recv_value ck st span (root, idx) =
  let base = sym_term ck st span (get_sym ck st span root) in
  match idx with None -> base | Some i -> sel base i

(** Replace the value a receiver designates: for a direct vector,
    rebind the root; for an element, store a fresh element and frame
    the rest. *)
let set_recv_value ck st span (root, idx) (new_v : Term.t) : state =
  match idx with
  | None -> (
      match get_sym ck st span root with
      | SRef (r2, None) -> { st with vals = IMap.add r2 (SVal new_v) st.vals }
      | _ -> { st with vals = IMap.add root (SVal new_v) st.vals })
  | Some i ->
      let old_outer = sym_term ck st span (get_sym ck st span root) in
      let new_outer = fresh_val "!v" in
      let st = List.fold_left assume st (store_facts ~old_v:old_outer ~new_v:new_outer i new_v) in
      { st with vals = IMap.add root (SVal new_outer) st.vals }

let exec_vec_call ck (st : state) span (m : string) (args : Ir.operand list)
    (dest : Ir.place) : state =
  match (m, args) with
  | "len", [ recv ] ->
      let v = recv_value ck st span (receiver ck st span recv) in
      write_place ck st span dest (SVal (len_of v))
  | "is_empty", [ recv ] ->
      let v = recv_value ck st span (receiver ck st span recv) in
      write_place ck st span dest (SVal (Term.eq (len_of v) (Term.int 0)))
  | "get", [ recv; idx ] ->
      let r = receiver ck st span recv in
      let v = recv_value ck st span r in
      let i = operand_term ck st span idx in
      check_bounds ck st span ~what:"RVec::get" i v;
      write_place ck st span dest (SVal (sel v i))
  | "get_mut", [ recv; idx ] -> (
      let root, slot = receiver ck st span recv in
      let v = recv_value ck st span (root, slot) in
      let i = operand_term ck st span idx in
      check_bounds ck st span ~what:"RVec::get_mut" i v;
      match slot with
      | None -> (
          (* reference to element i of the vector at root *)
          match get_sym ck st span root with
          | SRef (r2, None) -> write_place ck st span dest (SRef (r2, Some i))
          | SVal _ -> write_place ck st span dest (SRef (root, Some i))
          | SRef (_, Some _) ->
              werr span "nested mutable element references are not supported")
      | Some _ ->
          werr span "nested mutable element references are not supported")
  | "push", [ recv; value ] ->
      let r = receiver ck st span recv in
      let v = recv_value ck st span r in
      let e = operand_term ck st span value in
      let v' = fresh_val "!v" in
      let j = Term.var (Rty_fresh.fresh "!j") in
      let st =
        List.fold_left assume st
          [
            FGround (Term.eq (len_of v') (Term.add (len_of v) (Term.int 1)));
            FGround (Term.eq (sel v' (len_of v)) e);
            FForall
              ( [ (Term.to_string j, Sort.Int) ],
                Term.mk_imp
                  (Term.mk_and
                     [ Term.le (Term.int 0) j; Term.lt j (len_of v) ])
                  (Term.eq (sel v' j) (sel v j)) );
          ]
      in
      let st = set_recv_value ck st span r v' in
      write_place ck st span dest (SVal (Term.int 0))
  | "pop", [ recv ] ->
      let r = receiver ck st span recv in
      let v = recv_value ck st span r in
      check_vc ck st span ~what:"RVec::pop"
        (Term.gt (len_of v) (Term.int 0));
      let v' = fresh_val "!v" in
      let j = Term.var (Rty_fresh.fresh "!j") in
      let st =
        List.fold_left assume st
          [
            FGround (Term.eq (len_of v') (Term.sub (len_of v) (Term.int 1)));
            FForall
              ( [ (Term.to_string j, Sort.Int) ],
                Term.mk_imp
                  (Term.mk_and
                     [ Term.le (Term.int 0) j; Term.lt j (len_of v') ])
                  (Term.eq (sel v' j) (sel v j)) );
          ]
      in
      let st = set_recv_value ck st span r v' in
      write_place ck st span dest
        (SVal (sel v (Term.sub (len_of v) (Term.int 1))))
  | "swap", [ recv; i1; i2 ] ->
      let r = receiver ck st span recv in
      let v = recv_value ck st span r in
      let a = operand_term ck st span i1 in
      let b = operand_term ck st span i2 in
      check_bounds ck st span ~what:"RVec::swap" a v;
      check_bounds ck st span ~what:"RVec::swap" b v;
      let v' = fresh_val "!v" in
      let j = Term.var (Rty_fresh.fresh "!j") in
      let st =
        List.fold_left assume st
          [
            FGround (Term.eq (len_of v') (len_of v));
            FGround (Term.eq (sel v' a) (sel v b));
            FGround (Term.eq (sel v' b) (sel v a));
            FForall
              ( [ (Term.to_string j, Sort.Int) ],
                Term.mk_imp
                  (Term.mk_and
                     [
                       Term.le (Term.int 0) j;
                       Term.lt j (len_of v);
                       Term.ne j a;
                       Term.ne j b;
                     ])
                  (Term.eq (sel v' j) (sel v j)) );
          ]
      in
      let st = set_recv_value ck st span r v' in
      write_place ck st span dest (SVal (Term.int 0))
  | "clone", [ recv ] ->
      let v = recv_value ck st span (receiver ck st span recv) in
      write_place ck st span dest (SVal v)
  | _ -> werr span "unknown RVec method %s in the baseline" m

(** Execute a user function call: check its preconditions, havoc what
    it may mutate (framing element updates), assume its postconditions. *)
let exec_user_call ck (st : state) span (fd : Ast.fn_def)
    (args : Ir.operand list) (dest : Ir.place) : state =
  if List.length args <> List.length fd.Ast.fn_params then
    werr span "%s: arity mismatch" fd.Ast.fn_name;
  let arg_syms = List.map (operand_sym ck st span) args in
  let pre_env =
    List.map2
      (fun (x, _) s -> (x, sym_term ck st span s))
      fd.Ast.fn_params arg_syms
  in
  (* preconditions *)
  List.iter
    (fun r ->
      check_spec_goals ck st span
        ~what:(fd.Ast.fn_name ^ ": precondition")
        { sc_env = pre_env; sc_old = None; sc_result = None }
        r)
    fd.Ast.fn_contract.Ast.c_requires;
  (* havoc mutable arguments *)
  let st = ref st in
  let post_env =
    List.map2
      (fun (x, ty) s ->
        match (ty, s) with
        | Ast.TRef (Ast.Mut, _), SRef (root, None) ->
            let v' = fresh_val "!post" in
            st := set_recv_value ck !st span (root, None) v';
            (x, v')
        | Ast.TRef (Ast.Mut, _), SRef (root, Some i) ->
            (* element of a container: fresh element value, frame the
               others (ownership guarantees the callee only touches the
               borrowed element) *)
            let v' = fresh_val "!post" in
            st := set_recv_value ck !st span (root, Some i) v';
            (x, v')
        | Ast.TRef (Ast.Mut, _), SVal _ ->
            (* opaque mutable value (e.g. a trusted struct): havoc *)
            let v' = fresh_val "!post" in
            (x, v')
        | _, s -> (x, sym_term ck !st span s))
      fd.Ast.fn_params arg_syms
  in
  (* opaque &mut values passed by value-model must be written back *)
  List.iteri
    (fun i ((_, ty), s) ->
      match (ty, s) with
      | Ast.TRef (Ast.Mut, _), SVal _ -> (
          match List.nth args i with
          | Ir.Copy p | Ir.Move p when p.Ir.projs = [] ->
              let x = fst (List.nth fd.Ast.fn_params i) in
              let v' = List.assoc x post_env in
              st := { !st with vals = IMap.add p.Ir.base (SVal v') !st.vals }
          | _ -> ())
      | _ -> ())
    (List.combine fd.Ast.fn_params arg_syms);
  (* result *)
  let result = fresh_val "!ret" in
  let st' = write_place ck !st span dest (SVal result) in
  let st' =
    List.fold_left assume st'
      (List.concat_map (fun ty_fact -> ty_fact)
         [ type_facts fd.Ast.fn_ret result ])
  in
  (* postconditions *)
  let st' =
    List.fold_left
      (fun st e ->
        List.fold_left assume st
          (eval_spec_fact ck
             { sc_env = post_env; sc_old = Some pre_env; sc_result = Some result }
             e))
      st' fd.Ast.fn_contract.Ast.c_ensures
  in
  st'

(* ------------------------------------------------------------------ *)
(* Block execution                                                     *)
(* ------------------------------------------------------------------ *)

let rec exec_block ck (st : state) (bb : int) : unit =
  let body = ck.body in
  if body.Ir.mb_loop_heads.(bb) then begin
    let invs = invariants_of body bb in
    let span =
      match invs with (_, sp) :: _ -> sp | [] -> body.Ir.mb_span
    in
    (* the arriving state must establish every invariant; old(..)
       refers to the function entry state, as in Prusti *)
    let env = name_env ck st span in
    List.iter
      (fun (inv, sp) ->
        check_spec_goals ck st sp ~what:"loop invariant (entry/preservation)"
          { sc_env = env; sc_old = ck.entry_env; sc_result = None }
          inv)
      invs;
    if not (Hashtbl.mem ck.processed_headers bb) then begin
      Hashtbl.replace ck.processed_headers bb ();
      (* havoc everything the loop assigns, then assume the invariants *)
      let defs = loop_defs body ck.loop_blocks.(bb) in
      let st = List.fold_left (fun st l -> havoc_local ck st l) st defs in
      let env = name_env ck st span in
      let st =
        List.fold_left
          (fun st (inv, _) ->
            List.fold_left assume st
              (eval_spec_fact ck
                 { sc_env = env; sc_old = ck.entry_env; sc_result = None }
                 inv))
          st invs
      in
      exec_stmts ck st bb
    end
  end
  else exec_stmts ck st bb

and exec_stmts ck (st : state) (bb : int) : unit =
  let blk = ck.body.Ir.mb_blocks.(bb) in
  let st =
    List.fold_left
      (fun st s ->
        match s with
        | Ir.SNop | Ir.SInvariant _ -> st
        | Ir.SAssign (dest, rv, span) -> exec_assign ck st span dest rv)
      st blk.Ir.stmts
  in
  exec_term ck st blk.Ir.term

and exec_assign ck (st : state) span (dest : Ir.place) (rv : Ir.rvalue) : state
    =
  match rv with
  | Ir.RUse op -> write_place ck st span dest (operand_sym ck st span op)
  | Ir.RBin (op, a, b) ->
      let ta = operand_term ck st span a in
      let tb = operand_term ck st span b in
      let dest_is_usize =
        dest.Ir.base < Array.length ck.body.Ir.mb_locals
        && ck.body.Ir.mb_locals.(dest.Ir.base).Ir.ld_ty = Ast.TInt Ast.Usize
        && dest.Ir.projs = []
      in
      let t =
        match op with
        | Ast.Add -> Term.add ta tb
        | Ast.Sub ->
            if dest_is_usize && !check_underflow then
              check_vc ck st span ~what:"usize subtraction (underflow)"
                (Term.le tb ta);
            Term.sub ta tb
        | Ast.Mul -> Term.mul ta tb
        | Ast.Div -> Term.div ta tb
        | Ast.Rem -> Term.md ta tb
        | Ast.Lt -> Term.lt ta tb
        | Ast.Le -> Term.le ta tb
        | Ast.Gt -> Term.gt ta tb
        | Ast.Ge -> Term.ge ta tb
        | Ast.EqOp -> Term.eq ta tb
        | Ast.NeOp -> Term.ne ta tb
        | Ast.AndOp -> Term.mk_and [ ta; tb ]
        | Ast.OrOp -> Term.mk_or [ ta; tb ]
        | Ast.ImpOp -> werr span "==> in program code"
      in
      write_place ck st span dest (SVal t)
  | Ir.RUn (Ast.Not, a) ->
      write_place ck st span dest (SVal (Term.mk_not (operand_term ck st span a)))
  | Ir.RUn (Ast.NegOp, a) ->
      write_place ck st span dest (SVal (Term.neg (operand_term ck st span a)))
  | Ir.RRef (_, p) -> (
      match p.Ir.projs with
      | [] -> write_place ck st span dest (SRef (p.Ir.base, None))
      | [ Ir.PDeref ] -> (
          match get_sym ck st span p.Ir.base with
          | SRef _ as s -> write_place ck st span dest s
          | SVal _ -> write_place ck st span dest (SRef (p.Ir.base, None)))
      | _ -> werr span "unsupported borrow in the baseline verifier")
  | Ir.RAggregate (_, _) -> write_place ck st span dest (SVal (fresh_val "!agg"))

and exec_term ck (st : state) (term : Ir.terminator) : unit =
  let body = ck.body in
  match term with
  | Ir.TGoto s -> exec_block ck st s
  | Ir.TSwitch (op, s_then, s_else) ->
      let c = operand_term ck st body.Ir.mb_span op in
      exec_block ck (assume_t st c) s_then;
      exec_block ck (assume_t st (Term.mk_not c)) s_else
  | Ir.TUnreachable ->
      check_vc ck st body.Ir.mb_span ~what:"assertion" Term.ff
  | Ir.TReturn ->
      (* check the function's postconditions *)
      let span = body.Ir.mb_span in
      let env = name_env ck st span in
      let result = sym_term ck st span (get_sym ck st span 0) in
      let old_env =
        match ck.entry_env with Some e -> e | None -> env
      in
      List.iter
        (fun e ->
          check_spec_goals ck st span ~what:"postcondition"
            { sc_env = env; sc_old = Some old_env; sc_result = Some result }
            e)
        ck.fd.Ast.fn_contract.Ast.c_ensures
  | Ir.TCall { tc_func; tc_args; tc_dest; tc_target; tc_span } ->
      let st =
        if String.equal tc_func "RVec::new" then begin
          let v = fresh_val "!new" in
          let st = assume_t st (Term.eq (len_of v) (Term.int 0)) in
          write_place ck st tc_span tc_dest (SVal v)
        end
        else if String.length tc_func > 6 && String.sub tc_func 0 6 = "RVec::"
        then
          exec_vec_call ck st tc_span
            (String.sub tc_func 6 (String.length tc_func - 6))
            tc_args tc_dest
        else
          match Ast.find_fn ck.prog tc_func with
          | Some fd -> exec_user_call ck st tc_span fd tc_args tc_dest
          | None -> werr tc_span "unknown function %s" tc_func
      in
      exec_block ck st tc_target

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let verify_body ?(certify = false) (prog : Ast.program) (fd : Ast.fn_def)
    (body : Ir.body) : fn_report =
  Profile.with_fn fd.Ast.fn_name @@ fun () ->
  Profile.time "wp.fn_s" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* Per-function determinism, as in [Checker.check_body]: generated
     names restart at zero so VCs are independent of check order and
     of the domain running the check. *)
  Rty_fresh.reset ();
  let preds = Ir.predecessors body in
  let dom = Ir.dominators body in
  let loop_blocks =
    Array.init (Array.length body.Ir.mb_blocks) (fun h ->
        if body.Ir.mb_loop_heads.(h) then natural_loop body preds dom h
        else Hashtbl.create 1)
  in
  let ck =
    {
      prog;
      body;
      fd;
      errors = [];
      vcs = 0;
      preds;
      loop_blocks;
      processed_headers = Hashtbl.create 8;
      entry_env = None;
      certify;
      goals = [];
    }
  in
  (try
     (* initial state: parameters get fresh values with type facts *)
     let st = ref { vals = IMap.empty; facts = [] } in
     Array.iteri
       (fun l (decl : Ir.local_decl) ->
         match decl.Ir.ld_kind with
         | Ir.KArg ->
             let v = fresh_val decl.Ir.ld_name in
             st := { !st with vals = IMap.add l (SVal v) !st.vals };
             st := List.fold_left assume !st (type_facts decl.Ir.ld_ty v)
         | Ir.KReturn | Ir.KUser | Ir.KTemp ->
             st := { !st with vals = IMap.add l (SVal (fresh_val "!u")) !st.vals })
       body.Ir.mb_locals;
     let env = name_env ck !st body.Ir.mb_span in
     ck.entry_env <- Some env;
     (* assume the preconditions *)
     List.iter
       (fun r ->
         st :=
           List.fold_left assume !st
             (eval_spec_fact ck
                { sc_env = env; sc_old = None; sc_result = None }
                r))
       fd.Ast.fn_contract.Ast.c_requires;
     exec_block ck !st 0
   with Wp_error (msg, span) -> add_error ck span msg);
  {
    fr_name = fd.Ast.fn_name;
    fr_errors = List.rev ck.errors;
    fr_vcs = ck.vcs;
    fr_time = Unix.gettimeofday () -. t0;
    fr_goals = List.rev ck.goals;
  }

type report = { rp_fns : fn_report list; rp_time : float }

let report_ok r = List.for_all fn_ok r.rp_fns
let report_errors r = List.concat_map (fun fr -> fr.fr_errors) r.rp_fns

let verify_program_ast ?certify (prog : Ast.program) : report =
  let t0 = Unix.gettimeofday () in
  let bodies = Flux_mir.Lower.lower_program prog in
  let fns =
    List.filter_map
      (fun (fd : Ast.fn_def) ->
        if fd.Ast.fn_trusted then None
        else
          match List.assoc_opt fd.Ast.fn_name bodies with
          | Some body -> Some (verify_body ?certify prog fd body)
          | None -> None)
      (Ast.program_fns prog)
  in
  { rp_fns = fns; rp_time = Unix.gettimeofday () -. t0 }

(** Parse, typecheck, lower and verify a source string with the
    Prusti-style baseline. *)
let verify_source ?certify (src : string) : report =
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  verify_program_ast ?certify prog
