(** Surface AST for the Rust subset checked by Flux.

    The subset covers everything the paper's evaluation exercises:
    functions with [#[lr::sig(...)]] refinement signatures, structs with
    [#[lr::refined_by]]/[#[lr::field]] attributes and [impl] blocks,
    `let`/`while`/`if`/assignment statements, integer/float/boolean
    expressions, calls, method calls (incl. the built-in [RVec] API) and
    reference creation/dereference. Prusti-style specifications
    ([#[requires]], [#[ensures]], [body_invariant!]) share the same
    expression grammar extended with [forall], [old] and [==>]. *)

(* ------------------------------------------------------------------ *)
(* Positions                                                           *)
(* ------------------------------------------------------------------ *)

type pos = { line : int; col : int }
type span = { sp_start : pos; sp_end : pos }

let dummy_pos = { line = 0; col = 0 }
let dummy_span = { sp_start = dummy_pos; sp_end = dummy_pos }

let pp_span fmt s =
  if s.sp_start.line = 0 then Format.pp_print_string fmt "<builtin>"
  else Format.fprintf fmt "%d:%d" s.sp_start.line s.sp_start.col

(* ------------------------------------------------------------------ *)
(* Unrefined (plain Rust) types                                        *)
(* ------------------------------------------------------------------ *)

type int_kind = I32 | I64 | Usize | Isize

type mutability = Imm | Mut

type ty =
  | TInt of int_kind
  | TFloat  (** f32 *)
  | TBool
  | TUnit
  | TVec of ty  (** RVec<ty> *)
  | TStruct of string
  | TRef of mutability * ty
  | TParam of string  (** generic parameter, used in library signatures *)
  | TInfer of int  (** unification variable, local type inference only *)

let rec ty_equal a b =
  match (a, b) with
  | TInt k1, TInt k2 -> k1 = k2
  | TFloat, TFloat | TBool, TBool | TUnit, TUnit -> true
  | TVec t1, TVec t2 -> ty_equal t1 t2
  | TStruct s1, TStruct s2 -> String.equal s1 s2
  | TRef (m1, t1), TRef (m2, t2) -> m1 = m2 && ty_equal t1 t2
  | TParam x, TParam y -> String.equal x y
  | TInfer i, TInfer j -> i = j
  | _ -> false

let int_kind_str = function
  | I32 -> "i32"
  | I64 -> "i64"
  | Usize -> "usize"
  | Isize -> "isize"

let rec pp_ty fmt = function
  | TInt k -> Format.pp_print_string fmt (int_kind_str k)
  | TFloat -> Format.pp_print_string fmt "f32"
  | TBool -> Format.pp_print_string fmt "bool"
  | TUnit -> Format.pp_print_string fmt "()"
  | TVec t -> Format.fprintf fmt "RVec<%a>" pp_ty t
  | TStruct s -> Format.pp_print_string fmt s
  | TRef (Imm, t) -> Format.fprintf fmt "&%a" pp_ty t
  | TRef (Mut, t) -> Format.fprintf fmt "&mut %a" pp_ty t
  | TParam x -> Format.pp_print_string fmt x
  | TInfer i -> Format.fprintf fmt "_%d" i

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Le
  | Gt
  | Ge
  | EqOp
  | NeOp
  | AndOp
  | OrOp
  | ImpOp  (** [==>], spec contexts only *)

type unop = Not | NegOp

type expr = {
  e : expr_kind;
  e_span : span;
  mutable e_ty : ty option;  (** filled in by the unrefined typechecker *)
}

and expr_kind =
  | EInt of int
  | EFloat of float
  | EBool of bool
  | EUnit
  | EVar of string
  | EBin of binop * expr * expr
  | EUn of unop * expr
  | ECall of string * expr list  (** includes path calls like [RVec::new] *)
  | EMethod of expr * string * expr list
  | EField of expr * string
  | EStruct of string * (string * expr) list
  | ERef of mutability * expr
  | EDeref of expr
  | EIf of expr * block * block option  (** if-expression *)
  | EBlock of block
  (* --- specification-only forms --- *)
  | EForall of (string * ty) list * expr  (** forall(|x: usize| p) *)
  | EOld of expr  (** old(e) in Prusti postconditions *)
  | EResult  (** [result] in Prusti postconditions *)

and block = { stmts : stmt list; tail : expr option; b_span : span }

and stmt =
  | SLet of { lname : string; lmut : bool; lty : ty option; linit : expr; lspan : span }
  | SAssign of expr * binop option * expr * span
      (** place, optional compound op (for [+=] etc.), rhs *)
  | SExpr of expr
  | SWhile of expr * block * span
  | SInvariant of expr * span
      (** [body_invariant!(p)] — a Prusti loop-invariant annotation; only
          meaningful at the head of a [while] body *)
  | SReturn of expr option * span
  | SBreak of span

let mk_expr ?(span = dummy_span) e = { e; e_span = span; e_ty = None }

let expr_span e = e.e_span

(* ------------------------------------------------------------------ *)
(* Refinement specification types                                      *)
(* ------------------------------------------------------------------ *)

(** Refinement expressions: parsed form of index/predicate expressions
    in [lr::sig] attributes and Prusti contracts. They reuse [expr];
    variables refer to refinement parameters and the value binder. *)
type rexpr = expr

(** An index position in a refined base type. *)
type index =
  | IxExpr of rexpr  (** e.g. [i32<n+1>] *)
  | IxBinder of string  (** [@n]: binds a signature-scoped parameter *)

(** Refined surface types of the spec language. *)
type rty =
  | RBase of rbase * index list
      (** [B<ix,..>]; an empty index list means unrefined (≡ ∃v. true) *)
  | RExists of string * rbase * rexpr  (** [B{v: p}] *)
  | RRef of refkind * rty
  | RFn of fn_spec  (** only for nested positions; unused at present *)

and rbase =
  | RBInt of int_kind
  | RBFloat
  | RBBool
  | RBUnit
  | RBVec of rty  (** RVec<τ, ·> element type *)
  | RBStruct of string
  | RBParam of string

and refkind = RShr | RMut | RStrg

and fn_spec = {
  fs_args : rty list;  (** positional argument types *)
  fs_ret : rty;
  fs_requires : rexpr list;
  fs_ensures : (string * rty) list;
      (** [ensures *x: τ] — updated type of strong-reference argument [x];
          the name refers to the surface parameter at the same position *)
}

(** Prusti-style contracts attached to a function. *)
type contract = {
  c_requires : rexpr list;
  c_ensures : rexpr list;
}

let empty_contract = { c_requires = []; c_ensures = [] }

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

type fn_def = {
  fn_name : string;  (** mangled with the impl target, e.g. "RMat::new" *)
  fn_params : (string * ty) list;
  fn_ret : ty;
  fn_body : block option;  (** [None] for trusted/extern declarations *)
  fn_sig : fn_spec option;  (** Flux signature from [#[lr::sig(...)]] *)
  fn_contract : contract;  (** Prusti contract, if any *)
  fn_trusted : bool;
  fn_span : span;
}

type field_def = {
  fd_name : string;
  fd_ty : ty;
  fd_rty : rty option;  (** from [#[lr::field(...)]] *)
}

type struct_def = {
  st_name : string;
  st_refined_by : (string * Flux_smt.Sort.t) list;
  st_fields : field_def list;
  st_invariant : rexpr option;  (** an optional index invariant *)
  st_span : span;
}

type item = IFn of fn_def | IStruct of struct_def

type program = item list

let program_fns (p : program) =
  List.filter_map (function IFn f -> Some f | _ -> None) p

let program_structs (p : program) =
  List.filter_map (function IStruct s -> Some s | _ -> None) p

let find_fn (p : program) name =
  List.find_opt (fun f -> String.equal f.fn_name name) (program_fns p)

let find_struct (p : program) name =
  List.find_opt (fun s -> String.equal s.st_name name) (program_structs p)

(* ------------------------------------------------------------------ *)
(* Pretty printing (for diagnostics and golden tests)                  *)
(* ------------------------------------------------------------------ *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | EqOp -> "=="
  | NeOp -> "!="
  | AndOp -> "&&"
  | OrOp -> "||"
  | ImpOp -> "==>"

let rec pp_expr fmt e =
  match e.e with
  | EInt n -> Format.pp_print_int fmt n
  | EFloat x -> Format.fprintf fmt "%g" x
  | EBool b -> Format.pp_print_bool fmt b
  | EUnit -> Format.pp_print_string fmt "()"
  | EVar x -> Format.pp_print_string fmt x
  | EBin (op, a, b) ->
      Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | EUn (Not, a) -> Format.fprintf fmt "!%a" pp_expr a
  | EUn (NegOp, a) -> Format.fprintf fmt "-%a" pp_expr a
  | ECall (f, args) -> Format.fprintf fmt "%s(%a)" f pp_args args
  | EMethod (r, m, args) ->
      Format.fprintf fmt "%a.%s(%a)" pp_expr r m pp_args args
  | EField (r, f) -> Format.fprintf fmt "%a.%s" pp_expr r f
  | EStruct (s, fields) ->
      Format.fprintf fmt "%s { %a }" s
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (f, e) -> Format.fprintf fmt "%s: %a" f pp_expr e))
        fields
  | ERef (Imm, e) -> Format.fprintf fmt "&%a" pp_expr e
  | ERef (Mut, e) -> Format.fprintf fmt "&mut %a" pp_expr e
  | EDeref e -> Format.fprintf fmt "*%a" pp_expr e
  | EIf (c, t, None) -> Format.fprintf fmt "if %a %a" pp_expr c pp_block t
  | EIf (c, t, Some f) ->
      Format.fprintf fmt "if %a %a else %a" pp_expr c pp_block t pp_block f
  | EBlock b -> pp_block fmt b
  | EForall (params, body) ->
      Format.fprintf fmt "forall(|%a| %a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (x, t) -> Format.fprintf fmt "%s: %a" x pp_ty t))
        params pp_expr body
  | EOld e -> Format.fprintf fmt "old(%a)" pp_expr e
  | EResult -> Format.pp_print_string fmt "result"

and pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_expr fmt args

and pp_block fmt b =
  Format.fprintf fmt "{@[<v 2>@ %a%a@]@ }"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
    b.stmts
    (fun fmt -> function
      | None -> ()
      | Some e -> Format.fprintf fmt "@ %a" pp_expr e)
    b.tail

and pp_stmt fmt = function
  | SLet { lname; lmut; lty; linit; _ } ->
      Format.fprintf fmt "let %s%s%a = %a;"
        (if lmut then "mut " else "")
        lname
        (fun fmt -> function
          | None -> ()
          | Some t -> Format.fprintf fmt ": %a" pp_ty t)
        lty pp_expr linit
  | SAssign (p, None, e, _) -> Format.fprintf fmt "%a = %a;" pp_expr p pp_expr e
  | SAssign (p, Some op, e, _) ->
      Format.fprintf fmt "%a %s= %a;" pp_expr p (binop_str op) pp_expr e
  | SExpr e -> Format.fprintf fmt "%a;" pp_expr e
  | SWhile (c, b, _) -> Format.fprintf fmt "while %a %a" pp_expr c pp_block b
  | SInvariant (e, _) -> Format.fprintf fmt "body_invariant!(%a);" pp_expr e
  | SReturn (None, _) -> Format.pp_print_string fmt "return;"
  | SReturn (Some e, _) -> Format.fprintf fmt "return %a;" pp_expr e
  | SBreak _ -> Format.pp_print_string fmt "break;"

let rec pp_rty fmt = function
  | RBase (b, []) -> pp_rbase fmt b
  | RBase (b, ixs) ->
      Format.fprintf fmt "%a<%a>" pp_rbase b
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_index)
        ixs
  | RExists (v, b, p) ->
      Format.fprintf fmt "%a{%s: %a}" pp_rbase b v pp_expr p
  | RRef (RShr, t) -> Format.fprintf fmt "&%a" pp_rty t
  | RRef (RMut, t) -> Format.fprintf fmt "&mut %a" pp_rty t
  | RRef (RStrg, t) -> Format.fprintf fmt "&strg %a" pp_rty t
  | RFn _ -> Format.pp_print_string fmt "<fn>"

and pp_rbase fmt = function
  | RBInt k -> Format.pp_print_string fmt (int_kind_str k)
  | RBFloat -> Format.pp_print_string fmt "f32"
  | RBBool -> Format.pp_print_string fmt "bool"
  | RBUnit -> Format.pp_print_string fmt "()"
  | RBVec t -> Format.fprintf fmt "RVec<%a>" pp_rty t
  | RBStruct s -> Format.pp_print_string fmt s
  | RBParam x -> Format.pp_print_string fmt x

and pp_index fmt = function
  | IxExpr e -> pp_expr fmt e
  | IxBinder x -> Format.fprintf fmt "@%s" x

(* ------------------------------------------------------------------ *)
(* Source rendering                                                    *)
(* ------------------------------------------------------------------ *)

(* A re-parseable concrete-syntax printer, used by the fuzzer's
   shrinker to turn a reduced AST back into a candidate input. Unlike
   the diagnostic printers above it must survive a round trip through
   the lexer and parser, which drives its few idiosyncrasies:

   - every binary/unary application is parenthesized, so index
     expressions inside [<...>] never expose a top-level [>]/[>=] (the
     lexer treats [>] as the closing bracket there; parentheses restore
     the full grammar);
   - negative numeric literals print as [(-n)] so the round trip is
     idempotent (the parser reads them back as negations, which print
     the same way);
   - float literals always carry a ['.'], otherwise they would re-lex
     as integers;
   - mangled method names ([T::m]) are regrouped into [impl T] blocks.

   Round-tripping normalizes spans and sugar ([x += e] becomes
   [x = x + e] only in print form, never in the AST — compound
   assignment is preserved); it is source-stable: print ∘ parse ∘ print
   = print. *)

let src_float (f : float) : string =
  let s = Printf.sprintf "%.12g" f in
  if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec src_expr buf (e : expr) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  match e.e with
  | EInt n -> if n < 0 then pf "(-%s)" (string_of_int (-n)) else pf "%d" n
  | EFloat f ->
      if f < 0.0 then pf "(-%s)" (src_float (-.f)) else pf "%s" (src_float f)
  | EBool b -> pf "%b" b
  | EUnit -> pf "()"
  | EVar x -> pf "%s" x
  | EBin (op, a, b) ->
      pf "(";
      src_expr buf a;
      pf " %s " (binop_str op);
      src_expr buf b;
      pf ")"
  | EUn (Not, a) ->
      pf "(!";
      src_expr buf a;
      pf ")"
  | EUn (NegOp, a) ->
      pf "(-";
      src_expr buf a;
      pf ")"
  | ECall (f, args) ->
      pf "%s(" f;
      src_args buf args;
      pf ")"
  | EMethod (r, m, args) ->
      src_expr buf r;
      pf ".%s(" m;
      src_args buf args;
      pf ")"
  | EField (r, f) ->
      src_expr buf r;
      pf ".%s" f
  | EStruct (s, fields) ->
      pf "%s { " s;
      List.iteri
        (fun i (f, e) ->
          if i > 0 then pf ", ";
          pf "%s: " f;
          src_expr buf e)
        fields;
      pf " }"
  | ERef (Imm, e) ->
      pf "&";
      src_expr buf e
  | ERef (Mut, e) ->
      pf "&mut ";
      src_expr buf e
  | EDeref e ->
      pf "(*";
      src_expr buf e;
      pf ")"
  | EIf (c, t, f) -> (
      pf "if ";
      src_expr buf c;
      pf " ";
      src_block buf 0 t;
      match f with
      | None -> ()
      | Some f ->
          pf " else ";
          src_block buf 0 f)
  | EBlock b -> src_block buf 0 b
  | EForall (params, body) ->
      pf "forall(|";
      List.iteri
        (fun i (x, t) ->
          if i > 0 then pf ", ";
          pf "%s: %s" x (Format.asprintf "%a" pp_ty t))
        params;
      pf "| ";
      src_expr buf body;
      pf ")"
  | EOld e ->
      pf "old(";
      src_expr buf e;
      pf ")"
  | EResult -> pf "result"

and src_args buf args =
  List.iteri
    (fun i a ->
      if i > 0 then Printf.bprintf buf ", ";
      src_expr buf a)
    args

and src_block buf ind (b : block) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  let pad = String.make (ind + 4) ' ' in
  pf "{\n";
  List.iter
    (fun s ->
      pf "%s" pad;
      src_stmt buf (ind + 4) s;
      pf "\n")
    b.stmts;
  (match b.tail with
  | None -> ()
  | Some e ->
      pf "%s" pad;
      src_expr buf e;
      pf "\n");
  pf "%s}" (String.make ind ' ')

and src_stmt buf ind (s : stmt) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  match s with
  | SLet { lname; lmut; lty; linit; _ } ->
      pf "let %s%s" (if lmut then "mut " else "") lname;
      (match lty with
      | None -> ()
      | Some t -> pf ": %s" (Format.asprintf "%a" pp_ty t));
      pf " = ";
      src_expr buf linit;
      pf ";"
  | SAssign (p, op, e, _) ->
      src_expr buf p;
      (match op with
      | None -> pf " = "
      | Some op -> pf " %s= " (binop_str op));
      src_expr buf e;
      pf ";"
  | SExpr ({ e = EIf _ | EBlock _; _ } as e) -> src_expr buf e
  | SExpr e ->
      src_expr buf e;
      pf ";"
  | SWhile (c, b, _) ->
      pf "while ";
      src_expr buf c;
      pf " ";
      src_block buf ind b
  | SInvariant (e, _) ->
      pf "body_invariant!(";
      src_expr buf e;
      pf ");"
  | SReturn (None, _) -> pf "return;"
  | SReturn (Some e, _) ->
      pf "return ";
      src_expr buf e;
      pf ";"
  | SBreak _ -> pf "break;"

let rec src_rty buf (t : rty) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  let src_ix ix =
    match ix with
    | IxBinder x -> pf "@%s" x
    | IxExpr e -> src_expr buf e
  in
  match t with
  | RBase (b, []) -> src_rbase buf b
  | RBase (RBVec elt, ixs) ->
      (* indices share the element's angle brackets: RVec<i32, @n> *)
      pf "RVec<";
      src_rty buf elt;
      List.iter
        (fun ix ->
          pf ", ";
          src_ix ix)
        ixs;
      pf ">"
  | RBase (b, ixs) ->
      src_rbase buf b;
      pf "<";
      List.iteri
        (fun i ix ->
          if i > 0 then pf ", ";
          src_ix ix)
        ixs;
      pf ">"
  | RExists (v, b, p) ->
      src_rbase buf b;
      pf "{%s: " v;
      src_expr buf p;
      pf "}"
  | RRef (RShr, t) ->
      pf "&";
      src_rty buf t
  | RRef (RMut, t) ->
      pf "&mut ";
      src_rty buf t
  | RRef (RStrg, t) ->
      pf "&strg ";
      src_rty buf t
  | RFn _ -> pf "<fn>"

and src_rbase buf (b : rbase) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  match b with
  | RBInt k -> pf "%s" (int_kind_str k)
  | RBFloat -> pf "f32"
  | RBBool -> pf "bool"
  | RBUnit -> pf "()"
  | RBVec t ->
      pf "RVec<";
      src_rty buf t;
      pf ">"
  | RBStruct s -> pf "%s" s
  | RBParam x -> pf "%s" x

let src_fn_sig buf (fs : fn_spec) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  pf "#[lr::sig(fn(";
  List.iteri
    (fun i t ->
      if i > 0 then pf ", ";
      src_rty buf t)
    fs.fs_args;
  pf ") -> ";
  src_rty buf fs.fs_ret;
  List.iter
    (fun e ->
      pf " requires ";
      src_expr buf e)
    fs.fs_requires;
  List.iter
    (fun (x, t) ->
      pf " ensures %s: " x;
      src_rty buf t)
    fs.fs_ensures;
  pf ")]\n"

let src_fn buf ~(impl_self : string option) (fd : fn_def) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  let ind = if impl_self = None then 0 else 4 in
  let pad = String.make ind ' ' in
  let local_name =
    match impl_self with
    | None -> fd.fn_name
    | Some prefix ->
        let plen = String.length prefix + 2 in
        String.sub fd.fn_name plen (String.length fd.fn_name - plen)
  in
  if fd.fn_trusted then pf "%s#[lr::trusted]\n" pad;
  (match fd.fn_sig with
  | None -> ()
  | Some fs ->
      pf "%s" pad;
      src_fn_sig buf fs);
  List.iter
    (fun e ->
      pf "%s#[requires(" pad;
      src_expr buf e;
      pf ")]\n")
    fd.fn_contract.c_requires;
  List.iter
    (fun e ->
      pf "%s#[ensures(" pad;
      src_expr buf e;
      pf ")]\n")
    fd.fn_contract.c_ensures;
  pf "%sfn %s(" pad local_name;
  List.iteri
    (fun i (x, t) ->
      if i > 0 then pf ", ";
      match (x, t) with
      | "self", TRef (Imm, TStruct _) -> pf "&self"
      | "self", TRef (Mut, TStruct _) -> pf "&mut self"
      | "self", TStruct _ -> pf "self"
      | _ -> pf "%s: %s" x (Format.asprintf "%a" pp_ty t))
    fd.fn_params;
  pf ")";
  (match fd.fn_ret with
  | TUnit -> ()
  | t -> pf " -> %s" (Format.asprintf "%a" pp_ty t));
  match fd.fn_body with
  | None -> pf ";\n"
  | Some b ->
      pf " ";
      src_block buf ind b;
      pf "\n"

let src_struct buf (sd : struct_def) : unit =
  let pf fmt = Printf.bprintf buf fmt in
  (match sd.st_refined_by with
  | [] -> ()
  | binds ->
      pf "#[lr::refined_by(";
      List.iteri
        (fun i (x, s) ->
          if i > 0 then pf ", ";
          pf "%s: %s" x (Flux_smt.Sort.to_string s))
        binds;
      pf ")]\n");
  (match sd.st_invariant with
  | None -> ()
  | Some e ->
      pf "#[lr::invariant(";
      src_expr buf e;
      pf ")]\n");
  pf "struct %s {\n" sd.st_name;
  List.iter
    (fun f ->
      (match f.fd_rty with
      | None -> ()
      | Some t ->
          pf "    #[lr::field(";
          src_rty buf t;
          pf ")]\n");
      pf "    %s: %s,\n" f.fd_name (Format.asprintf "%a" pp_ty f.fd_ty))
    sd.st_fields;
  pf "}\n"

(** Method prefix of a mangled function name: [Some "T"] for ["T::m"]. *)
let fn_impl_prefix (fd : fn_def) : string option =
  match String.index_opt fd.fn_name ':' with
  | Some i when i + 1 < String.length fd.fn_name && fd.fn_name.[i + 1] = ':' ->
      Some (String.sub fd.fn_name 0 i)
  | _ -> None

let program_to_source (p : program) : string =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.bprintf buf fmt in
  let rec go = function
    | [] -> ()
    | IStruct sd :: rest ->
        src_struct buf sd;
        pf "\n";
        go rest
    | IFn fd :: rest -> (
        match fn_impl_prefix fd with
        | None ->
            src_fn buf ~impl_self:None fd;
            pf "\n";
            go rest
        | Some prefix ->
            (* group the run of consecutive methods of the same target *)
            let rec split acc = function
              | IFn fd' :: rest when fn_impl_prefix fd' = Some prefix ->
                  split (fd' :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let methods, rest = split [ fd ] rest in
            pf "impl %s {\n" prefix;
            List.iter (fun m -> src_fn buf ~impl_self:(Some prefix) m) methods;
            pf "}\n\n";
            go rest)
  in
  go p;
  Buffer.contents buf

(** Render one expression to concrete syntax (used in oracle reports). *)
let expr_to_source (e : expr) : string =
  let buf = Buffer.create 64 in
  src_expr buf e;
  Buffer.contents buf
