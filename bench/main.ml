(** Benchmark harness reproducing the paper's evaluation (§5).

    [bench/main.exe table1] regenerates Table 1: per-benchmark LOC /
    Spec / Annot line counts and verification times for Flux and for
    the Prusti-style baseline, plus the three headline claims (§5.1
    time ratio, §5.2 spec compactness, §5.3 annotation overhead).

    [bench/main.exe ablations] runs the parameter sweeps listed in
    DESIGN.md: qualifier-set size vs. solve time, the effect of
    cone-of-influence slicing, and the baseline's quantifier
    instantiation depth.

    [bench/main.exe micro] runs Bechamel micro-benchmarks of the
    substrate (one [Test.make] per measured series).

    [bench/main.exe lint] lints the 7 workloads with every pass
    enabled, cold then warm, asserting zero findings, a fully-hit warm
    cache, and zero warm solver queries; writes [BENCH_lint.json].

    [bench/main.exe certify] measures the proof-certificate pipeline:
    a cold certified run (solve + emit) against a warm run whose every
    verdict re-validates by replaying its stored certificate, asserting
    zero replay rejections, zero warm solver queries, and an aggregate
    replay time within 5% of the solve time; spliced into
    [BENCH_table1.json] under a ["certify"] key.

    [bench/main.exe daemon] measures the [fluxd] daemon: cold CLI
    end-to-end time (process start + parse + verify, fresh cache) vs.
    warm daemon request latency (socket round trip answered from the
    in-memory verdict cache) per Table-1 workload, p50/p95 for both,
    spliced into [BENCH_table1.json] under a ["daemon"] key.

    [table1] additionally writes [BENCH_table1.json]: the same rows in
    machine-readable form, each with the full {!Flux_smt.Profile} dump
    for that verification run, so the perf trajectory is diffable
    across PRs. *)

module Checker = Flux_check.Checker
module Wp = Flux_wp.Wp
module Engine = Flux_engine.Engine
module Workloads = Flux_workloads.Workloads
module Loc = Flux_workloads.Loc
module Solver = Flux_smt.Solver
module Profile = Flux_smt.Profile

let fresh_caches () =
  Solver.clear_cache ();
  Solver.reset_stats ();
  Flux_fixpoint.Solve.reset_stats ();
  Profile.reset ()

let time_flux src =
  fresh_caches ();
  let t0 = Unix.gettimeofday () in
  let r = Checker.check_source src in
  (Unix.gettimeofday () -. t0, Checker.report_ok r)

let time_prusti src =
  fresh_caches ();
  let t0 = Unix.gettimeofday () in
  let r = Wp.verify_source src in
  (Unix.gettimeofday () -. t0, Wp.report_ok r)

(* Like [time_flux]/[time_prusti], but also snapshot the profiler
   (reset by [fresh_caches], so the snapshot covers exactly this run). *)
let time_flux_prof src =
  let t, ok = time_flux src in
  (t, ok, Profile.to_json ())

let time_prusti_prof src =
  let t, ok = time_prusti src in
  (t, ok, Profile.to_json ())

(* ------------------------------------------------------------------ *)
(* Engine measurements (parallel + incremental cache)                  *)
(* ------------------------------------------------------------------ *)

(** Remove every cache entry so a run against [dir] starts cold. *)
let wipe_cache dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let profile_count key =
  match List.assoc_opt key (Profile.snapshot ()) with
  | Some (n, _, _) -> n
  | None -> 0

type engine_meas = {
  eg_jobs : int;
  eg_fns : int;  (** functions in the pooled suite *)
  eg_cold_t : float;  (** parallel wall-clock, empty cache *)
  eg_cold_ok : bool;
  eg_cold_hits : int;
  eg_warm_t : float;  (** parallel wall-clock, fully warm cache *)
  eg_warm_ok : bool;
  eg_warm_hits : int;
  eg_warm_misses : int;
  eg_warm_queries : int;  (** solver queries issued during the warm run *)
  eg_rows : (string * (int * int)) list;
      (** per-benchmark warm-run (cache hits, misses) *)
}

(** Verify all [srcs] as one pooled engine batch, cold then warm: the
    whole suite shares one schedule, so the parallel wall-clock is
    bounded by the single largest function rather than the largest
    per-benchmark sum. *)
let engine_suite ~jobs ~dir (srcs : (string * string) list) : engine_meas =
  let progs =
    List.map
      (fun (_, src) ->
        let p = Flux_syntax.Parser.parse_program src in
        Flux_syntax.Typeck.check_program p;
        p)
      srcs
  in
  let cfg = { Engine.jobs; cache_dir = Some dir } in
  (* The engine phases run late in the bench process; shed the heap the
     earlier suites grew (interned terms, major-heap garbage) so their
     wall-clock is not paying for the sequential runs' GC debt. *)
  let pristine () =
    fresh_caches ();
    Flux_smt.Term.reset_intern ();
    Gc.compact ()
  in
  wipe_cache dir;
  pristine ();
  let t0 = Unix.gettimeofday () in
  let cold = Engine.check_programs cfg progs in
  let cold_t = Unix.gettimeofday () -. t0 in
  pristine ();
  let t1 = Unix.gettimeofday () in
  let warm = Engine.check_programs cfg progs in
  let warm_t = Unix.gettimeofday () -. t1 in
  let warm_queries = profile_count "solver.queries" in
  let sum f runs = List.fold_left (fun a r -> a + f r) 0 runs in
  {
    eg_jobs = (if jobs <= 0 then Domain.recommended_domain_count () else jobs);
    eg_fns = sum (fun r -> List.length r.Engine.run_fns) warm;
    eg_cold_t = cold_t;
    eg_cold_ok = List.for_all Engine.run_ok cold;
    eg_cold_hits = sum (fun r -> r.Engine.run_hits) cold;
    eg_warm_t = warm_t;
    eg_warm_ok = List.for_all Engine.run_ok warm;
    eg_warm_hits = sum (fun r -> r.Engine.run_hits) warm;
    eg_warm_misses = sum (fun r -> r.Engine.run_misses) warm;
    eg_warm_queries = warm_queries;
    eg_rows =
      List.map2
        (fun (name, _) r -> (name, (r.Engine.run_hits, r.Engine.run_misses)))
        srcs warm;
  }

let json_engine (e : engine_meas) ~seq_time =
  Printf.sprintf
    "{\"jobs\": %d, \"cores\": %d, \"functions\": %d, \"sequential_time_s\": \
     %.3f, \"parallel_time_s\": %.3f, \"parallel_over_sequential\": %.3f, \
     \"warm_time_s\": %.3f, \"warm_cache_hits\": %d, \"warm_cache_misses\": \
     %d, \"warm_solver_queries\": %d}"
    e.eg_jobs
    (Domain.recommended_domain_count ())
    e.eg_fns seq_time e.eg_cold_t
    (e.eg_cold_t /. seq_time)
    e.eg_warm_t e.eg_warm_hits e.eg_warm_misses e.eg_warm_queries

(* ------------------------------------------------------------------ *)
(* Incremental fixpoint: SCC-scheduled weakening vs. the naive sweep,  *)
(* and slice-cache replay after a spec edit                            *)
(* ------------------------------------------------------------------ *)

let with_schedule inc f =
  let saved = !Flux_fixpoint.Solve.incremental_enabled in
  Flux_fixpoint.Solve.incremental_enabled := inc;
  Fun.protect
    ~finally:(fun () -> Flux_fixpoint.Solve.incremental_enabled := saved)
    f

(* Two sequential loops whose join κs land in distinct SCC slices; the
   return postcondition only reaches the later slice, so editing it
   must replay the first loop's slice from the cache. *)
let two_phase_src ret =
  Printf.sprintf
    {|
#[lr::sig(fn(usize<@n>) -> usize{v: %s})]
fn two_phase(n: usize) -> usize {
    let mut i = 0;
    let mut s = 0;
    while i < n {
        i += 1;
        s += 1;
    }
    let mut j = 0;
    while j < s {
        j += 1;
    }
    j
}
|}
    ret

type inc_meas = {
  im_naive_t : float;
  im_naive_wc : int;  (** weaken checks, reference sweep *)
  im_inc_t : float;
  im_inc_wc : int;  (** weaken checks, SCC worklist *)
  im_skipped : int;  (** fixpoint.reweaken_skipped *)
  im_sccs : int;  (** fixpoint.scc_count *)
  im_agree : bool;  (** both schedules return the same verdict *)
  im_edit_scratch_wc : int;  (** weaken checks re-solving the edit cold *)
  im_edit_warm_wc : int;  (** weaken checks with the slice cache warm *)
  im_edit_slice_hits : int;
  im_edit_ok : bool;
}

let incremental_bench () =
  let measure inc src =
    with_schedule inc (fun () ->
        fresh_caches ();
        let t0 = Unix.gettimeofday () in
        let ok = Checker.report_ok (Checker.check_source src) in
        ( Unix.gettimeofday () -. t0,
          ok,
          profile_count "fixpoint.weaken_checks",
          profile_count "fixpoint.reweaken_skipped",
          profile_count "fixpoint.scc_count" ))
  in
  let nt, nok, nwc, _, _ = measure false Workloads.rmat_flux in
  let it, iok, iwc, iskip, isccs = measure true Workloads.rmat_flux in
  (* spec edit: warm the slice cache on v1, then check v2 whose only
     change is the return postcondition; the unaffected SCC must replay *)
  let v1 = two_phase_src "0 <= v" and v2 = two_phase_src "v <= n" in
  fresh_caches ();
  let scratch_ok =
    Engine.run_ok
      (Engine.check_source { Engine.jobs = 1; cache_dir = None } v2)
  in
  let scratch_wc = profile_count "fixpoint.weaken_checks" in
  let dir = ".flux-cache-incbench" in
  wipe_cache dir;
  let cfg = { Engine.jobs = 1; cache_dir = Some dir } in
  let _ = Engine.check_source cfg v1 in
  fresh_caches ();
  let warm_ok = Engine.run_ok (Engine.check_source cfg v2) in
  let warm_wc = profile_count "fixpoint.weaken_checks" in
  let slice_hits = profile_count "cache.slice_hits" in
  wipe_cache dir;
  {
    im_naive_t = nt;
    im_naive_wc = nwc;
    im_inc_t = it;
    im_inc_wc = iwc;
    im_skipped = iskip;
    im_sccs = isccs;
    im_agree = nok = iok && nok;
    im_edit_scratch_wc = scratch_wc;
    im_edit_warm_wc = warm_wc;
    im_edit_slice_hits = slice_hits;
    im_edit_ok = scratch_ok && warm_ok;
  }

let inc_reduction (m : inc_meas) =
  float_of_int m.im_naive_wc /. float_of_int (max 1 m.im_inc_wc)

let inc_ok (m : inc_meas) =
  m.im_agree && m.im_edit_ok
  && m.im_inc_wc < m.im_naive_wc
  && m.im_edit_warm_wc < m.im_edit_scratch_wc
  && m.im_edit_slice_hits > 0

let json_incremental (m : inc_meas) =
  Printf.sprintf
    "{\"rmat\": {\"weaken_checks_naive\": %d, \"weaken_checks_incremental\": \
     %d, \"reduction_x\": %.2f, \"reweaken_skipped\": %d, \"sccs\": %d, \
     \"naive_time_s\": %.3f, \"incremental_time_s\": %.3f, \
     \"verdicts_agree\": %b}, \"spec_edit\": {\"weaken_checks_scratch\": %d, \
     \"weaken_checks_warm\": %d, \"slice_hits\": %d, \"ok\": %b}, \"ok\": %b}"
    m.im_naive_wc m.im_inc_wc (inc_reduction m) m.im_skipped m.im_sccs
    m.im_naive_t m.im_inc_t m.im_agree m.im_edit_scratch_wc m.im_edit_warm_wc
    m.im_edit_slice_hits m.im_edit_ok (inc_ok m)

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type row = {
  r_name : string;
  r_flux : Loc.counts;
  r_flux_time : float option;
  r_flux_ok : bool;
  r_flux_profile : string option;  (** Profile JSON for the flux run *)
  r_prusti : Loc.counts;
  r_prusti_time : float option;
  r_prusti_ok : bool;
  r_prusti_profile : string option;
}

(* ------------------------------------------------------------------ *)
(* BENCH_table1.json                                                   *)
(* ------------------------------------------------------------------ *)

let json_opt_float = function
  | None -> "null"
  | Some t -> Printf.sprintf "%.3f" t

let json_opt_raw = function None -> "null" | Some s -> s

let json_side ~(annot : int option) ?cache (c : Loc.counts) time ok profile =
  let annot_field =
    match annot with None -> "" | Some a -> Printf.sprintf "\"annot\": %d, " a
  in
  let cache_field =
    match cache with
    | None -> ""
    | Some (h, m) ->
        Printf.sprintf "\"warm_cache_hits\": %d, \"warm_cache_misses\": %d, " h m
  in
  Printf.sprintf
    "{\"loc\": %d, \"spec\": %d, %s%s\"time_s\": %s, \"ok\": %b, \"profile\": %s}"
    c.Loc.loc c.Loc.spec annot_field cache_field (json_opt_float time) ok
    (json_opt_raw profile)

let json_row ~cache_rows (r : row) =
  Printf.sprintf "    {\"name\": \"%s\", \"flux\": %s, \"prusti\": %s}"
    r.r_name
    (json_side ~annot:None
       ?cache:(List.assoc_opt r.r_name cache_rows)
       r.r_flux r.r_flux_time r.r_flux_ok r.r_flux_profile)
    (json_side ~annot:(Some r.r_prusti.Loc.annot) r.r_prusti r.r_prusti_time
       r.r_prusti_ok r.r_prusti_profile)

let write_table1_json ~(rows : row list) ~totals ~claims ~cache_rows ~engine
    ~incremental =
  let fl, fs, ft, pl, ps, pa, pt = totals in
  let time_ratio, spec_ratio, annot_pct = claims in
  let oc = open_out "BENCH_table1.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map (json_row ~cache_rows) rows));
  Printf.fprintf oc
    "  \"totals\": {\"flux\": {\"loc\": %d, \"spec\": %d, \"time_s\": %.3f}, \
     \"prusti\": {\"loc\": %d, \"spec\": %d, \"annot\": %d, \"time_s\": \
     %.3f}},\n"
    fl fs ft pl ps pa pt;
  (match engine with
  | Some e -> Printf.fprintf oc "  \"engine\": %s,\n" e
  | None -> ());
  (match incremental with
  | Some i -> Printf.fprintf oc "  \"incremental\": %s,\n" i
  | None -> ());
  Printf.fprintf oc
    "  \"claims\": {\"time_ratio_prusti_over_flux\": %.2f, \
     \"spec_ratio_prusti_over_flux\": %.2f, \"annot_pct_of_loc\": %.1f}\n}\n"
    time_ratio spec_ratio annot_pct;
  close_out oc

let opt_time = function
  | None -> "    -"
  | Some t -> Printf.sprintf "%5.1f" t

let print_row r =
  Printf.printf "%-10s | %4d %4d %5s %5s %s | %4d %4d %5d %5s %s\n" r.r_name
    r.r_flux.Loc.loc r.r_flux.Loc.spec "-" (opt_time r.r_flux_time)
    (if r.r_flux_ok then " " else "FAIL")
    r.r_prusti.Loc.loc r.r_prusti.Loc.spec r.r_prusti.Loc.annot
    (opt_time r.r_prusti_time)
    (if r.r_prusti_ok then " " else "FAIL")

let table1 ~jobs () =
  Printf.printf
    "Table 1 - Flux vs. the Prusti-style baseline (this reproduction)\n\n";
  Printf.printf "%-10s | %-27s | %-27s\n" "" "Flux" "Prusti (baseline)";
  Printf.printf "%-10s | %4s %4s %5s %5s   | %4s %4s %5s %5s\n" "" "LOC" "Spec"
    "Annot" "T(s)" "LOC" "Spec" "Annot" "T(s)";
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "Library\n";
  let rvec_counts = Loc.count Workloads.rvec_spec in
  let rvec_row =
    {
      r_name = "RVec";
      r_flux = { rvec_counts with Loc.loc = 0 };
      r_flux_time = None (* built-in / trusted *);
      r_flux_ok = true;
      r_flux_profile = None;
      r_prusti = { rvec_counts with Loc.loc = 0 };
      r_prusti_time = None;
      r_prusti_ok = true;
      r_prusti_profile = None;
    }
  in
  print_row rvec_row;
  let rmat_time, rmat_ok, rmat_prof = time_flux_prof Workloads.rmat_flux in
  let rmat_row =
    {
      r_name = "RMat";
      r_flux = Loc.count Workloads.rmat_flux;
      r_flux_time = Some rmat_time;
      r_flux_ok = rmat_ok;
      r_flux_profile = Some rmat_prof;
      r_prusti = Loc.count Workloads.rmat_prusti;
      r_prusti_time = None (* trusted abstraction in Prusti, §5.2 *);
      r_prusti_ok = true;
      r_prusti_profile = None;
    }
  in
  print_row rmat_row;
  Printf.printf "Benchmarks\n";
  let rows =
    List.map
      (fun (b : Workloads.benchmark) ->
        let ft, fok, fprof = time_flux_prof b.Workloads.bm_flux in
        let pt, pok, pprof = time_prusti_prof b.Workloads.bm_prusti in
        {
          r_name = b.Workloads.bm_name;
          r_flux = Loc.count b.Workloads.bm_flux;
          r_flux_time = Some ft;
          r_flux_ok = fok;
          r_flux_profile = Some fprof;
          r_prusti = Loc.count b.Workloads.bm_prusti;
          r_prusti_time = Some pt;
          r_prusti_ok = pok;
          r_prusti_profile = Some pprof;
        })
      Workloads.all
  in
  List.iter print_row rows;
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  let sumt f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let fl = sum (fun r -> r.r_flux.Loc.loc) in
  let fs = sum (fun r -> r.r_flux.Loc.spec) in
  let ft = sumt (fun r -> Option.value ~default:0.0 r.r_flux_time) in
  let pl = sum (fun r -> r.r_prusti.Loc.loc) in
  let ps = sum (fun r -> r.r_prusti.Loc.spec) in
  let pa = sum (fun r -> r.r_prusti.Loc.annot) in
  let pt = sumt (fun r -> Option.value ~default:0.0 r.r_prusti_time) in
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "%-10s | %4d %4d %5s %5.1f   | %4d %4d %5d %5.1f\n" "Total" fl
    fs "-" ft pl ps pa pt;
  Printf.printf "\nHeadline claims (paper -> this reproduction):\n";
  Printf.printf
    "  §5.1 verification time ratio Prusti/Flux: %.1fx (paper: ~23x on \
     totals; 'an order of magnitude')\n"
    (pt /. ft);
  Printf.printf "  §5.2 specification lines Prusti/Flux: %.2fx (paper: ~2.1x)\n"
    (float_of_int ps /. float_of_int fs);
  Printf.printf
    "  §5.3 loop invariants: Flux 0 lines; Prusti %d lines = %.1f%% of LOC \
     (paper: ~14%% of LOC, ~11%% here depending on counting)\n"
    pa
    (100.0 *. float_of_int pa /. float_of_int pl);
  (* Engine: the same Flux suite, pooled through the parallel scheduler
     with the persistent cache — cold (parallel speedup) then warm
     (incremental replay). *)
  let eng =
    engine_suite ~jobs ~dir:".flux-cache-bench"
      (List.map
         (fun (b : Workloads.benchmark) -> (b.Workloads.bm_name, b.Workloads.bm_flux))
         Workloads.all)
  in
  Printf.printf
    "\nEngine (scheduler + incremental cache, --jobs %d on %d core(s)):\n"
    eng.eg_jobs
    (Domain.recommended_domain_count ());
  Printf.printf "  flux suite sequential     : %6.1fs\n" ft;
  Printf.printf "  flux suite parallel (cold): %6.1fs  (%.2fx of sequential%s)\n"
    eng.eg_cold_t (eng.eg_cold_t /. ft)
    (if eng.eg_cold_ok then "" else "; FAIL");
  Printf.printf
    "  flux suite warm cache     : %6.2fs  (%d/%d hits, %d solver queries%s)\n"
    eng.eg_warm_t eng.eg_warm_hits eng.eg_fns eng.eg_warm_queries
    (if eng.eg_warm_ok then "" else "; FAIL");
  (* Incremental fixpoint: SCC-scheduled weakening vs. the reference
     sweep on the largest constraint system (RMat), plus slice-cache
     replay after a single-spec edit. *)
  let inc = incremental_bench () in
  Printf.printf "\nIncremental fixpoint (RMat, %d SCCs):\n" inc.im_sccs;
  Printf.printf
    "  weaken checks naive       : %6d  (%.1fs)\n"
    inc.im_naive_wc inc.im_naive_t;
  Printf.printf
    "  weaken checks incremental : %6d  (%.1fs; %.1fx fewer, %d re-weaken \
     skips%s)\n"
    inc.im_inc_wc inc.im_inc_t (inc_reduction inc) inc.im_skipped
    (if inc.im_agree then "" else "; VERDICTS DIVERGE");
  Printf.printf
    "  spec edit (slice cache)   : %6d  (vs %d from scratch; %d slice \
     hit(s)%s)\n"
    inc.im_edit_warm_wc inc.im_edit_scratch_wc inc.im_edit_slice_hits
    (if inc.im_edit_ok then "" else "; FAIL");
  write_table1_json
    ~rows:(rvec_row :: rmat_row :: rows)
    ~totals:(fl, fs, ft, pl, ps, pa, pt)
    ~cache_rows:eng.eg_rows
    ~engine:(Some (json_engine eng ~seq_time:ft))
    ~incremental:(Some (json_incremental inc))
    ~claims:
      ( pt /. ft,
        float_of_int ps /. float_of_int fs,
        100.0 *. float_of_int pa /. float_of_int pl );
  Printf.printf "\nWrote BENCH_table1.json\n";
  let all_ok =
    List.for_all (fun r -> r.r_flux_ok && r.r_prusti_ok) rows
    && rmat_ok && eng.eg_cold_ok && eng.eg_warm_ok && inc_ok inc
  in
  Printf.printf "All verifications succeeded: %b\n" all_ok;
  if not all_ok then exit 1

(* ------------------------------------------------------------------ *)
(* CI smoke: small suite, cold + warm, asserting full warm hits        *)
(* ------------------------------------------------------------------ *)

let smoke ~jobs () =
  let names = [ "dotprod"; "bsearch" ] in
  let srcs =
    List.map
      (fun n ->
        let b = Option.get (Workloads.find n) in
        (n, b.Workloads.bm_flux))
      names
  in
  let eng = engine_suite ~jobs ~dir:".flux-cache-smoke" srcs in
  Printf.printf
    "Engine smoke (%s; --jobs %d):\n  cold: %.2fs (%d hits)\n  warm: %.2fs \
     (%d/%d hits, %d solver queries)\n"
    (String.concat "+" names) eng.eg_jobs eng.eg_cold_t eng.eg_cold_hits
    eng.eg_warm_t eng.eg_warm_hits eng.eg_fns eng.eg_warm_queries;
  let oc = open_out "BENCH_smoke.json" in
  Printf.fprintf oc
    "{\"suite\": \"%s\", \"engine\": %s, \"cold_cache_hits\": %d, \"ok\": %b}\n"
    (String.concat "+" names)
    (json_engine eng ~seq_time:eng.eg_cold_t)
    eng.eg_cold_hits
    (eng.eg_cold_ok && eng.eg_warm_ok);
  close_out oc;
  Printf.printf "Wrote BENCH_smoke.json\n";
  let pass =
    eng.eg_cold_ok && eng.eg_warm_ok
    && eng.eg_cold_hits = 0
    && eng.eg_warm_hits = eng.eg_fns
    && eng.eg_warm_misses = 0
    && eng.eg_warm_queries = 0
  in
  Printf.printf "Smoke assertions (cold all-miss, warm all-hit, zero warm \
                 solver queries): %s\n"
    (if pass then "PASS" else "FAIL");
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Fuzz smoke: a fixed-seed differential campaign over all three       *)
(* oracles must find zero bugs and report measured throughput          *)
(* ------------------------------------------------------------------ *)

let fuzz_smoke ~jobs () =
  let module Fuzz = Flux_fuzz.Fuzz in
  let cfg =
    {
      Fuzz.seed = 42;
      budget = 2.0;
      oracles = Fuzz.all_oracles;
      jobs;
      corpus_dir = None;
    }
  in
  let s = Fuzz.run cfg in
  let bugs = List.length (Fuzz.summary_bugs s) in
  Printf.printf "Fuzz smoke (seed %d, budget %.0fs, --jobs %d):\n" cfg.Fuzz.seed
    cfg.Fuzz.budget jobs;
  List.iter
    (fun (o : Fuzz.oracle_summary) ->
      Printf.printf "  %-10s %5d cases, %d ok, %d skipped, %d bugs\n"
        o.Fuzz.o_name o.Fuzz.o_cases o.Fuzz.o_ok o.Fuzz.o_skipped
        (List.length o.Fuzz.o_bugs))
    s.Fuzz.s_oracles;
  let total = List.fold_left (fun a o -> a + o.Fuzz.o_cases) 0 s.Fuzz.s_oracles in
  Printf.printf "  total      %5d cases in %.1fs (%.0f cases/s)\n" total
    s.Fuzz.s_elapsed
    (float_of_int total /. Float.max 1e-6 s.Fuzz.s_elapsed);
  let oc = open_out "BENCH_fuzz.json" in
  Printf.fprintf oc
    "{\"seed\": %d, \"budget\": %.1f, \"jobs\": %d, \"cases\": %d, \
     \"elapsed\": %.3f, \"oracles\": [%s], \"bugs\": %d, \"truncated\": %b, \
     \"ok\": %b}\n"
    cfg.Fuzz.seed cfg.Fuzz.budget jobs total s.Fuzz.s_elapsed
    (String.concat ", "
       (List.map
          (fun (o : Fuzz.oracle_summary) ->
            Printf.sprintf
              "{\"oracle\": \"%s\", \"cases\": %d, \"ok\": %d, \"skipped\": \
               %d, \"frontend\": %d, \"bugs\": %d}"
              o.Fuzz.o_name o.Fuzz.o_cases o.Fuzz.o_ok o.Fuzz.o_skipped
              o.Fuzz.o_frontend
              (List.length o.Fuzz.o_bugs))
          s.Fuzz.s_oracles))
    bugs s.Fuzz.s_truncated
    (bugs = 0 && not s.Fuzz.s_truncated);
  close_out oc;
  Printf.printf "Wrote BENCH_fuzz.json\n";
  let pass = bugs = 0 && not s.Fuzz.s_truncated in
  Printf.printf "Fuzz assertions (zero bugs, no truncation): %s\n"
    (if pass then "PASS" else "FAIL");
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Lint smoke: the 7 workloads must lint clean, and a warm-cache lint  *)
(* must answer entirely from the verdict cache (zero solver queries)   *)
(* ------------------------------------------------------------------ *)

module Lint = Flux_analysis.Lint
module Passes = Flux_analysis.Passes

let lint_bench ~jobs () =
  let dir = ".flux-cache-lint" in
  let cfg =
    { Lint.jobs; cache_dir = Some dir; passes = Passes.all_passes }
  in
  let lint_all () =
    List.map
      (fun (b : Workloads.benchmark) ->
        (b.Workloads.bm_name, Lint.lint_source cfg b.Workloads.bm_flux))
      Workloads.all
  in
  wipe_cache dir;
  fresh_caches ();
  Flux_smt.Term.reset_intern ();
  let t0 = Unix.gettimeofday () in
  let cold = lint_all () in
  let cold_t = Unix.gettimeofday () -. t0 in
  fresh_caches ();
  Flux_smt.Term.reset_intern ();
  let t1 = Unix.gettimeofday () in
  let warm = lint_all () in
  let warm_t = Unix.gettimeofday () -. t1 in
  let warm_queries = profile_count "solver.queries" in
  let sum f rs = List.fold_left (fun a (_, r) -> a + f r) 0 rs in
  let fns = sum (fun r -> List.length r.Lint.lr_fns) warm in
  let cold_findings = sum (fun r -> List.length (Lint.run_diags r)) cold in
  let warm_findings = sum (fun r -> List.length (Lint.run_diags r)) warm in
  let warm_hits = sum (fun r -> r.Lint.lr_hits) warm in
  let warm_misses = sum (fun r -> r.Lint.lr_misses) warm in
  Printf.printf
    "Lint smoke (7 workloads, every pass, --jobs %d):\n\
    \  cold: %.2fs (%d function(s), %d finding(s))\n\
    \  warm: %.2fs (%d/%d cache hits, %d finding(s), %d solver queries)\n"
    jobs cold_t fns cold_findings warm_t warm_hits fns warm_findings
    warm_queries;
  List.iter
    (fun (name, r) ->
      List.iter
        (fun d -> Printf.printf "  UNEXPECTED %s: %s\n" name
            (Format.asprintf "%a" Lint.pp_diag d))
        (Lint.run_diags r))
    (cold @ warm);
  let pass =
    cold_findings = 0 && warm_findings = 0 && warm_misses = 0
    && warm_hits = fns && warm_queries = 0
  in
  let oc = open_out "BENCH_lint.json" in
  Printf.fprintf oc
    "{\"jobs\": %d, \"functions\": %d, \"cold_time_s\": %.3f, \
     \"cold_findings\": %d, \"warm_time_s\": %.3f, \"warm_cache_hits\": %d, \
     \"warm_cache_misses\": %d, \"warm_findings\": %d, \
     \"warm_solver_queries\": %d, \"ok\": %b}\n"
    jobs fns cold_t cold_findings warm_t warm_hits warm_misses warm_findings
    warm_queries pass;
  close_out oc;
  Printf.printf "Wrote BENCH_lint.json\n";
  Printf.printf
    "Lint assertions (workloads clean, warm all-hit, zero warm solver \
     queries): %s\n"
    (if pass then "PASS" else "FAIL");
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Certify: emit certificates on a cold run, replay them on the warm   *)
(* run, and assert the replay overhead stays within the 5% budget      *)
(* ------------------------------------------------------------------ *)

module Sjson = Flux_server.Json

let profile_time key =
  match List.assoc_opt key (Profile.snapshot ()) with
  | Some (_, t, _) -> t
  | None -> 0.0

let certify_bench ~jobs () =
  let dir = ".flux-cache-certbench" in
  let progs =
    List.map
      (fun (b : Workloads.benchmark) ->
        let p = Flux_syntax.Parser.parse_program b.Workloads.bm_flux in
        Flux_syntax.Typeck.check_program p;
        p)
      Workloads.all
  in
  let cfg = { Engine.jobs; cache_dir = Some dir } in
  let pristine () =
    fresh_caches ();
    Flux_smt.Term.reset_intern ();
    Gc.compact ()
  in
  wipe_cache dir;
  pristine ();
  (* cold: solve every obligation and emit its certificate *)
  let t0 = Unix.gettimeofday () in
  let cold = Engine.check_programs ~certify:true cfg progs in
  let cold_t = Unix.gettimeofday () -. t0 in
  let emitted = profile_count "cert.emitted" in
  let incomplete = profile_count "cert.incomplete" in
  let emit_s = profile_time "cert.emit_s" in
  (* the solver work proper: cold wall-clock minus certificate
     construction (emission is the only certify-specific cold cost) *)
  let solve_s = cold_t -. emit_s in
  pristine ();
  (* warm: every cached verdict must re-validate by replay, with no
     SMT at all *)
  let t1 = Unix.gettimeofday () in
  let warm = Engine.check_programs ~certify:true cfg progs in
  let warm_t = Unix.gettimeofday () -. t1 in
  let replayed = profile_count "cert.replayed" in
  let failed = profile_count "cert.failed" in
  let replay_s = profile_time "cert.replay_s" in
  let warm_queries = profile_count "solver.queries" in
  wipe_cache dir;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let fns =
    List.fold_left (fun a r -> a + List.length r.Engine.run_fns) 0 warm
  in
  let cold_ok = List.for_all Engine.run_ok cold in
  let warm_ok = List.for_all Engine.run_ok warm in
  let ratio = replay_s /. Float.max 1e-9 solve_s in
  Printf.printf
    "Certify (7 workloads, --jobs %d):\n\
    \  cold: %.2fs  (%.2fs solving + %.2fs certificate emission; %d \
     certificate(s), %d function(s) uncertified)\n\
    \  warm: %.2fs  (%.3fs replaying %d certificate(s), %d rejected, %d \
     solver queries)\n\
    \  replay / solve: %.1f%%  (budget 5%%)\n"
    jobs cold_t solve_s emit_s emitted incomplete warm_t replay_s replayed
    failed warm_queries (100.0 *. ratio);
  let pass =
    cold_ok && warm_ok && emitted > 0 && incomplete = 0 && failed = 0
    && replayed = emitted && warm_queries = 0
    && ratio <= 0.05
  in
  let certify_json =
    Sjson.Obj
      [
        ("jobs", Sjson.Int jobs);
        ("functions", Sjson.Int fns);
        ("cold_time_s", Sjson.Float cold_t);
        ("solve_s", Sjson.Float solve_s);
        ("emit_s", Sjson.Float emit_s);
        ("warm_time_s", Sjson.Float warm_t);
        ("replay_s", Sjson.Float replay_s);
        ("emitted", Sjson.Int emitted);
        ("replayed", Sjson.Int replayed);
        ("failed", Sjson.Int failed);
        ("incomplete", Sjson.Int incomplete);
        ("warm_solver_queries", Sjson.Int warm_queries);
        ("replay_over_solve", Sjson.Float ratio);
        ("ok", Sjson.Bool pass);
      ]
  in
  (* splice under "certify" in BENCH_table1.json, preserving whatever
     the other modes already wrote *)
  let table_file = "BENCH_table1.json" in
  let table =
    if Sys.file_exists table_file then
      match Sjson.parse (Flux_engine.Diag.read_file table_file) with
      | Ok (Sjson.Obj kvs) ->
          Sjson.Obj
            (List.remove_assoc "certify" kvs @ [ ("certify", certify_json) ])
      | Ok _ | Error _ ->
          Printf.printf
            "  (existing %s is not a JSON object; rewriting with the certify \
             section only)\n"
            table_file;
          Sjson.Obj [ ("certify", certify_json) ]
    else Sjson.Obj [ ("certify", certify_json) ]
  in
  let oc = open_out table_file in
  output_string oc (Sjson.to_string ~pretty:true table);
  close_out oc;
  Printf.printf "Wrote %s (certify section)\n" table_file;
  Printf.printf
    "Certify assertions (all certified, warm all-replay, zero warm solver \
     queries, replay <= 5%% of solve): %s\n"
    (if pass then "PASS" else "FAIL");
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Abstract-interpretation discharge                                   *)
(* ------------------------------------------------------------------ *)

(** Everything verdict-identity promises for one run, time excluded —
    same rendering the full-vs-incremental differential tests pin. *)
let absint_render (r : Checker.report) : string =
  String.concat "\n"
    (List.map
       (fun (fr : Checker.fn_report) ->
         Format.asprintf "%s kvars=%d clauses=%d errors=[%s] sol=%s"
           fr.Checker.fr_name fr.Checker.fr_kvars fr.Checker.fr_clauses
           (String.concat ";"
              (List.map
                 (fun e -> Format.asprintf "%a" Checker.pp_error e)
                 fr.Checker.fr_errors))
           (match fr.Checker.fr_solution with
           | None -> "-"
           | Some sol -> Format.asprintf "%a" Flux_fixpoint.Solve.pp_solution sol))
       r.Checker.rp_fns)

type absint_row = {
  ab_name : string;
  ab_off_q : int;  (** solver queries, discharge disabled *)
  ab_on_q : int;  (** solver queries, discharge enabled *)
  ab_disch : int;
  ab_fall : int;
  ab_same : bool;  (** rendered verdicts byte-identical off vs on *)
  ab_on_t : float;
}

(** Off-vs-on ablation of the pre-solver abstract discharge, per
    Table-1 workload, plus a crosscheck sweep: every discharged clause
    re-solved, solver verdict winning, zero disagreements allowed. *)
let absint_bench ~jobs:_ () =
  let module Discharge = Flux_absint.Discharge in
  let run ~absint ~crosscheck src =
    let saved_e = !Discharge.enabled and saved_c = !Discharge.crosscheck in
    Fun.protect
      ~finally:(fun () ->
        Discharge.enabled := saved_e;
        Discharge.crosscheck := saved_c)
      (fun () ->
        Discharge.enabled := absint;
        Discharge.crosscheck := crosscheck;
        fresh_caches ();
        Discharge.reset ();
        let t0 = Unix.gettimeofday () in
        let r = Checker.check_source src in
        let t = Unix.gettimeofday () -. t0 in
        ( t,
          absint_render r,
          profile_count "solver.queries",
          profile_count "absint.discharged",
          profile_count "absint.fallthrough",
          profile_count "absint.crosscheck_fail" ))
  in
  let cases =
    List.map
      (fun (b : Workloads.benchmark) -> (b.Workloads.bm_name, b.Workloads.bm_flux))
      Workloads.all
    @ [ ("rmat", Workloads.rmat_flux) ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let _, off_r, off_q, _, _, _ = run ~absint:false ~crosscheck:false src in
        let on_t, on_r, on_q, disch, fall, _ =
          run ~absint:true ~crosscheck:false src
        in
        {
          ab_name = name;
          ab_off_q = off_q;
          ab_on_q = on_q;
          ab_disch = disch;
          ab_fall = fall;
          ab_same = String.equal off_r on_r;
          ab_on_t = on_t;
        })
      cases
  in
  (* crosscheck sweep: re-solve every clause the environment answered
     and count disagreements (the solver's verdict wins regardless) *)
  let xfail =
    List.fold_left
      (fun acc (_, src) ->
        let _, _, _, _, _, x = run ~absint:true ~crosscheck:true src in
        acc + x)
      0 cases
  in
  let pct off on =
    if off = 0 then 0.0 else 100.0 *. float_of_int (off - on) /. float_of_int off
  in
  Printf.printf "Absint discharge (Table-1 workloads, off vs on):\n";
  Printf.printf "  %-10s %10s %10s %11s %12s %7s %6s\n" "workload" "SMT(off)"
    "SMT(on)" "discharged" "fallthrough" "saved" "same";
  List.iter
    (fun r ->
      Printf.printf "  %-10s %10d %10d %11d %12d %6.1f%% %6s\n" r.ab_name
        r.ab_off_q r.ab_on_q r.ab_disch r.ab_fall
        (pct r.ab_off_q r.ab_on_q)
        (if r.ab_same then "yes" else "NO"))
    rows;
  let tot_off = List.fold_left (fun a r -> a + r.ab_off_q) 0 rows in
  let tot_on = List.fold_left (fun a r -> a + r.ab_on_q) 0 rows in
  let tot_disch = List.fold_left (fun a r -> a + r.ab_disch) 0 rows in
  let big_wins =
    List.length (List.filter (fun r -> pct r.ab_off_q r.ab_on_q >= 15.0) rows)
  in
  let all_same = List.for_all (fun r -> r.ab_same) rows in
  Printf.printf
    "  total: %d -> %d solver queries (%.1f%% saved), %d discharged; %d \
     workload(s) saved >= 15%%; crosscheck disagreements: %d\n"
    tot_off tot_on (pct tot_off tot_on) tot_disch big_wins xfail;
  let pass = all_same && tot_disch > 0 && big_wins >= 2 && xfail = 0 in
  let absint_json =
    Sjson.Obj
      [
        ( "rows",
          Sjson.Obj
            (List.map
               (fun r ->
                 ( r.ab_name,
                   Sjson.Obj
                     [
                       ("queries_off", Sjson.Int r.ab_off_q);
                       ("queries_on", Sjson.Int r.ab_on_q);
                       ("absint.discharged", Sjson.Int r.ab_disch);
                       ("absint.fallthrough", Sjson.Int r.ab_fall);
                       ("saved_pct", Sjson.Float (pct r.ab_off_q r.ab_on_q));
                       ("verdicts_identical", Sjson.Bool r.ab_same);
                       ("time_on_s", Sjson.Float r.ab_on_t);
                     ] ))
               rows) );
        ("queries_off_total", Sjson.Int tot_off);
        ("queries_on_total", Sjson.Int tot_on);
        ("absint.discharged", Sjson.Int tot_disch);
        ("workloads_saved_15pct", Sjson.Int big_wins);
        ("crosscheck_disagreements", Sjson.Int xfail);
        ("ok", Sjson.Bool pass);
      ]
  in
  let table_file = "BENCH_table1.json" in
  let table =
    if Sys.file_exists table_file then
      match Sjson.parse (Flux_engine.Diag.read_file table_file) with
      | Ok (Sjson.Obj kvs) ->
          Sjson.Obj
            (List.remove_assoc "absint" kvs @ [ ("absint", absint_json) ])
      | Ok _ | Error _ ->
          Printf.printf
            "  (existing %s is not a JSON object; rewriting with the absint \
             section only)\n"
            table_file;
          Sjson.Obj [ ("absint", absint_json) ]
    else Sjson.Obj [ ("absint", absint_json) ]
  in
  let oc = open_out table_file in
  output_string oc (Sjson.to_string ~pretty:true table);
  close_out oc;
  Printf.printf "Wrote %s (absint section)\n" table_file;
  Printf.printf
    "Absint assertions (identical verdicts, discharged > 0, >= 2 workloads \
     saved >= 15%%, zero crosscheck disagreements): %s\n"
    (if pass then "PASS" else "FAIL");
  if not pass then exit 1

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(** A synthetic loop-inference constraint family: infer an invariant κ
    over a scope of [scope_n] ghost variables from a counting loop. *)
let synth_solve ~quals ~scope_n =
  let open Flux_smt in
  let open Flux_fixpoint in
  let scope =
    List.init scope_n (fun i -> (Printf.sprintf "x%d" i, Sort.Int))
  in
  let scope_args = List.map (fun (x, s) -> Term.Var (x, s)) scope in
  let k =
    Horn.{ kname = "k"; kparams = ("v", Sort.Int) :: scope; kvalues = 1 }
  in
  let c =
    Horn.conj
      [
        Horn.CBind
          ("x0", Sort.Int, [], Horn.CHead (Horn.Kapp ("k", Term.int 0 :: scope_args), 1));
        Horn.CBind
          ( "j",
            Sort.Int,
            [ Horn.Kapp ("k", Term.var "j" :: scope_args) ],
            Horn.CGuard
              ( Term.lt (Term.var "j") (Term.var "x0"),
                Horn.CHead
                  ( Horn.Kapp ("k", Term.add (Term.var "j") (Term.int 1) :: scope_args),
                    2 ) ) );
        Horn.CBind
          ( "v",
            Sort.Int,
            [ Horn.Kapp ("k", Term.var "v" :: scope_args) ],
            Horn.CHead (Horn.Conc (Term.ge (Term.var "v") (Term.int 0)), 3) );
      ]
  in
  fresh_caches ();
  let t0 = Unix.gettimeofday () in
  let ok =
    match Solve.solve ~qualifiers:quals ~kvars:[ k ] c with
    | Solve.Sat _ -> true
    | Solve.Unsat _ -> false
  in
  (Unix.gettimeofday () -. t0, ok, (Solve.stats ()).weaken_checks)

let ablations () =
  let full = Flux_fixpoint.Qualifier.default in
  Printf.printf
    "Ablation A - qualifier-set size vs. inference cost (synthetic loop):\n";
  Printf.printf "  |quals| scope  time(s)  verified  weaken-checks\n";
  List.iter
    (fun (nq, ns) ->
      let quals = List.filteri (fun i _ -> i < nq) full in
      let t, ok, wc = synth_solve ~quals ~scope_n:ns in
      Printf.printf "  %6d %5d  %7.3f  %8b  %13d\n" (List.length quals) ns t ok
        wc)
    [ (4, 4); (8, 4); (List.length full, 4); (4, 12); (8, 12); (List.length full, 12) ];

  Printf.printf "\nAblation B - cone-of-influence slicing (flux end-to-end):\n";
  Printf.printf "  benchmark   sliced(s)  unsliced(s)\n";
  List.iter
    (fun name ->
      let b = Option.get (Workloads.find name) in
      Flux_fixpoint.Solve.slice_enabled := true;
      let t1, _ = time_flux b.Workloads.bm_flux in
      Flux_fixpoint.Solve.slice_enabled := false;
      let t2, _ = time_flux b.Workloads.bm_flux in
      Flux_fixpoint.Solve.slice_enabled := true;
      Printf.printf "  %-10s %9.2f  %11.2f\n" name t1 t2)
    [ "bsearch"; "kmp"; "simplex" ];

  Printf.printf
    "\nAblation C - baseline quantifier-instantiation rounds (kmp):\n";
  Printf.printf "  rounds  time(s)  verified\n";
  let b = Option.get (Workloads.find "kmp") in
  List.iter
    (fun rounds ->
      Wp.inst_rounds := rounds;
      let t, ok = time_prusti b.Workloads.bm_prusti in
      Printf.printf "  %6d  %7.2f  %8b\n" rounds t ok)
    [ 0; 1; 2 ];
  Wp.inst_rounds := 2

(* ------------------------------------------------------------------ *)
(* Daemon latency: cold CLI end-to-end vs. warm daemon requests        *)
(* ------------------------------------------------------------------ *)

module Client = Flux_server.Client
module Daemon = Flux_server.Daemon
module Sproto = Flux_server.Protocol
module Exec = Flux_server.Exec

(** Nearest-rank percentile (same rule as {!Flux_server.Metrics}). *)
let percentile p xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(** The [flux] binary built next to this bench executable
    ([_build/default/bin/flux.exe]). *)
let flux_bin () =
  let bench_dir = Filename.dirname Sys.executable_name in
  Filename.concat
    (Filename.concat (Filename.dirname bench_dir) "bin")
    "flux.exe"

(** Spawn [flux daemon start --socket socket] with stdio on /dev/null;
    [daemon start] only exits 0 once the socket answers. *)
let start_daemon ~bin ~socket =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process bin
      [| "flux"; "daemon"; "start"; "--socket"; socket |]
      null null null
  in
  let rec wait () =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  let ok = wait () in
  Unix.close null;
  ok

let stop_daemon ~socket =
  ignore (Client.roundtrip ~socket Sproto.Shutdown);
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec drain () =
    if not (Sys.file_exists socket) then ()
    else if Unix.gettimeofday () > deadline then begin
      (* drain overran: force-kill so the bench never leaks a daemon *)
      (match Daemon.read_pid socket with
      | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ());
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ socket; socket ^ ".pid" ]
    end
    else begin
      Unix.sleepf 0.05;
      drain ()
    end
  in
  drain ()

type daemon_row = {
  dr_name : string;
  dr_cold : float list;  (** cold CLI end-to-end seconds *)
  dr_warm : float list;  (** warm daemon request seconds *)
}

let daemon_bench ~jobs () =
  let bin = flux_bin () in
  if not (Sys.file_exists bin) then begin
    Printf.eprintf "bench daemon: %s not built\n" bin;
    exit 2
  end;
  let tmp = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "flux-bench-%d" (Unix.getpid ()) in
  let socket = Filename.concat tmp (tag ^ ".sock") in
  let warm_cache = Filename.concat tmp (tag ^ "-warm-cache") in
  let cold_reps = 3 and warm_reps = 20 in
  let files =
    List.map
      (fun (b : Workloads.benchmark) ->
        let f =
          Filename.concat tmp
            (Printf.sprintf "%s-%s.rs" tag b.Workloads.bm_name)
        in
        let oc = open_out f in
        output_string oc b.Workloads.bm_flux;
        close_out oc;
        (b.Workloads.bm_name, f))
      Workloads.all
  in
  let rm_dir dir =
    wipe_cache dir;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  let cleanup () =
    stop_daemon ~socket;
    List.iter (fun (_, f) -> try Sys.remove f with Sys_error _ -> ()) files;
    List.iter
      (fun (name, _) -> rm_dir (Filename.concat warm_cache name))
      files;
    rm_dir warm_cache
  in
  if not (start_daemon ~bin ~socket) then begin
    Printf.eprintf "bench daemon: could not start fluxd on %s\n" socket;
    exit 1
  end;
  Fun.protect ~finally:cleanup (fun () ->
      Printf.printf
        "Daemon latency (%d workloads; cold CLI ×%d vs. warm daemon ×%d, \
         --jobs %d):\n"
        (List.length files) cold_reps warm_reps jobs;
      let opts name =
        {
          (Exec.default_opts Exec.Flux_check) with
          Exec.quiet = true;
          jobs;
          cache_dir = Filename.concat warm_cache name;
        }
      in
      let rows =
        List.map
          (fun (name, file) ->
            (* cold: a fresh process against a fresh cache, end-to-end *)
            let cold =
              List.init cold_reps (fun i ->
                  let dir =
                    Filename.concat tmp
                      (Printf.sprintf "%s-cold-%s-%d" tag name i)
                  in
                  let cmd =
                    Printf.sprintf "%s check -q --cache-dir %s %s > /dev/null 2>&1"
                      (Filename.quote bin) (Filename.quote dir)
                      (Filename.quote file)
                  in
                  let t0 = Unix.gettimeofday () in
                  let rc = Sys.command cmd in
                  let t = Unix.gettimeofday () -. t0 in
                  rm_dir dir;
                  if rc <> 0 then begin
                    Printf.eprintf "bench daemon: cold `flux check %s` exited %d\n"
                      name rc;
                    exit 1
                  end;
                  t)
            in
            (* prime the daemon's caches, then measure warm requests *)
            let request () =
              let t0 = Unix.gettimeofday () in
              match
                Client.run ~spawn:Client.Never ~socket (opts name) ~file
              with
              | Some o when o.Exec.code = 0 -> Unix.gettimeofday () -. t0
              | Some o ->
                  Printf.eprintf "bench daemon: warm %s exited %d\n%s" name
                    o.Exec.code o.Exec.err;
                  exit 1
              | None ->
                  Printf.eprintf "bench daemon: warm %s: daemon unreachable\n"
                    name;
                  exit 1
            in
            ignore (request ());
            let warm = List.init warm_reps (fun _ -> request ()) in
            { dr_name = name; dr_cold = cold; dr_warm = warm })
          files
      in
      let ms l = 1000. *. l in
      Printf.printf "  %-10s %10s %10s %10s %10s %12s\n" "benchmark"
        "cold p50" "cold p95" "warm p50" "warm p95" "speedup(p50)";
      let row_json =
        List.map
          (fun r ->
            let cp50 = percentile 50. r.dr_cold
            and cp95 = percentile 95. r.dr_cold
            and wp50 = percentile 50. r.dr_warm
            and wp95 = percentile 95. r.dr_warm in
            Printf.printf "  %-10s %8.1fms %8.1fms %8.2fms %8.2fms %11.1fx\n"
              r.dr_name (ms cp50) (ms cp95) (ms wp50) (ms wp95)
              (cp50 /. Float.max 1e-9 wp50);
            ( r,
              Sjson.Obj
                [
                  ("name", Sjson.String r.dr_name);
                  ("cold_p50_ms", Sjson.Float (ms cp50));
                  ("cold_p95_ms", Sjson.Float (ms cp95));
                  ("warm_p50_ms", Sjson.Float (ms wp50));
                  ("warm_p95_ms", Sjson.Float (ms wp95));
                  ("speedup_p50", Sjson.Float (cp50 /. Float.max 1e-9 wp50));
                ] ))
          rows
      in
      let all_cold = List.concat_map (fun r -> r.dr_cold) rows in
      let all_warm = List.concat_map (fun r -> r.dr_warm) rows in
      let cp50 = percentile 50. all_cold and wp50 = percentile 50. all_warm in
      let wp95 = percentile 95. all_warm in
      Printf.printf "  %-10s %8.1fms %8.1fms %8.2fms %8.2fms %11.1fx\n"
        "aggregate" (ms cp50)
        (ms (percentile 95. all_cold))
        (ms wp50) (ms wp95)
        (cp50 /. Float.max 1e-9 wp50);
      let pass =
        List.for_all
          (fun r -> percentile 50. r.dr_warm < percentile 50. r.dr_cold)
          rows
      in
      let daemon_json =
        Sjson.Obj
          [
            ("jobs", Sjson.Int jobs);
            ("cold_reps", Sjson.Int cold_reps);
            ("warm_reps", Sjson.Int warm_reps);
            ("rows", Sjson.List (List.map snd row_json));
            ("cold_p50_ms", Sjson.Float (ms cp50));
            ("warm_p50_ms", Sjson.Float (ms wp50));
            ("warm_p95_ms", Sjson.Float (ms wp95));
            ("ok", Sjson.Bool pass);
          ]
      in
      (* splice under "daemon" in BENCH_table1.json, preserving the
         table1 rows already there *)
      let table_file = "BENCH_table1.json" in
      let table =
        if Sys.file_exists table_file then
          match Sjson.parse (Flux_engine.Diag.read_file table_file) with
          | Ok (Sjson.Obj kvs) ->
              Sjson.Obj (List.remove_assoc "daemon" kvs @ [ ("daemon", daemon_json) ])
          | Ok _ | Error _ ->
              Printf.printf
                "  (existing %s is not a JSON object; rewriting with the \
                 daemon section only)\n"
                table_file;
              Sjson.Obj [ ("daemon", daemon_json) ]
        else Sjson.Obj [ ("daemon", daemon_json) ]
      in
      let oc = open_out table_file in
      output_string oc (Sjson.to_string ~pretty:true table);
      close_out oc;
      Printf.printf "Wrote %s (daemon section)\n" table_file;
      Printf.printf
        "Daemon assertions (warm p50 beats cold CLI p50 on every workload): \
         %s\n"
        (if pass then "PASS" else "FAIL");
      if not pass then exit 1)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let trans_term =
    let open Flux_smt.Term in
    mk_imp
      (mk_and [ lt (var "x") (var "y"); le (var "y") (var "n") ])
      (lt (var "x") (var "n"))
  in
  let src name = (Option.get (Workloads.find name)).Workloads.bm_flux in
  let tests =
    Test.make_grouped ~name:"flux"
      [
        Test.make ~name:"smt-transitivity-query"
          (Staged.stage (fun () ->
               Solver.clear_cache ();
               ignore (Solver.valid trans_term)));
        Test.make ~name:"fixpoint-qualifier-instantiation"
          (Staged.stage (fun () ->
               ignore
                 (Flux_fixpoint.Qualifier.instantiate_all
                    Flux_fixpoint.Qualifier.default
                    [
                      ("v", Flux_smt.Sort.Int);
                      ("a", Flux_smt.Sort.Int);
                      ("b", Flux_smt.Sort.Int);
                      ("c", Flux_smt.Sort.Int);
                    ])));
        Test.make ~name:"frontend-parse-typecheck-kmeans"
          (Staged.stage (fun () ->
               let prog = Flux_syntax.Parser.parse_program (src "kmeans") in
               Flux_syntax.Typeck.check_program prog));
        Test.make ~name:"flux-end-to-end-dotprod"
          (Staged.stage (fun () ->
               fresh_caches ();
               ignore (Checker.check_source (src "dotprod"))));
        Test.make ~name:"prusti-end-to-end-dotprod"
          (Staged.stage (fun () ->
               fresh_caches ();
               ignore
                 (Wp.verify_source
                    (Option.get (Workloads.find "dotprod")).Workloads.bm_prusti)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Printf.printf "Micro-benchmarks (monotonic clock):\n";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-42s %14.0f ns/run\n" name est
      | _ -> Printf.printf "  %-42s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

let () =
  let args = Array.to_list Sys.argv in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> ( try int_of_string n with Failure _ -> 4)
      | _ :: rest -> find rest
      | [] -> 4
    in
    find args
  in
  let mode =
    if Array.length Sys.argv > 1 && Sys.argv.(1) <> "--jobs" then Sys.argv.(1)
    else "all"
  in
  match mode with
  | "table1" -> table1 ~jobs ()
  | "smoke" -> smoke ~jobs ()
  | "fuzz" -> fuzz_smoke ~jobs ()
  | "lint" -> lint_bench ~jobs ()
  | "certify" -> certify_bench ~jobs ()
  | "absint" -> absint_bench ~jobs ()
  | "daemon" -> daemon_bench ~jobs ()
  | "ablations" -> ablations ()
  | "micro" -> micro ()
  | "all" ->
      table1 ~jobs ();
      Printf.printf "\n";
      ablations ();
      Printf.printf "\n";
      micro ()
  | m ->
      Printf.eprintf
        "unknown mode %s (expected table1 | smoke | fuzz | lint | certify | \
         daemon | ablations | micro | all)\n"
        m;
      exit 2
