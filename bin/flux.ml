(** The [flux] command-line verifier.

    Usage: [flux check FILE.rs] type-checks a program in the Rust
    subset against its [#[lr::sig(...)]] refinement signatures, with
    optional dumps of the MIR, the generated Horn constraints and the
    inferred κ solutions. [flux lint FILE.rs] runs the solver-backed
    static-analysis passes (vacuous specs, unreachable code, trivial
    inferred invariants, dead stores, overflow candidates) over the
    same functions.

    Both subcommands go through the engine ({!Flux_engine.Engine}):
    functions are processed in parallel on [--jobs] domains and
    previously-clean functions are replayed from the persistent on-disk
    cache ([--cache-dir], disable with [--no-cache]). Output is
    byte-identical for every [--jobs] value: reports are emitted in
    declaration order and wall-clock times are only shown on request
    ([--times], inherently nondeterministic). Printing and exit codes
    are shared with [prusti] via {!Flux_engine.Diag}. *)

open Cmdliner
module Checker = Flux_check.Checker
module Engine = Flux_engine.Engine
module Diag = Flux_engine.Diag
module Lint = Flux_analysis.Lint
module Passes = Flux_analysis.Passes
module Fuzz = Flux_fuzz.Fuzz

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* flux check                                                          *)
(* ------------------------------------------------------------------ *)

let check_cmd_run file dump_mir dump_solution quiet jobs cache cache_dir times =
  Diag.with_frontend_errors ~tool:"flux" ~file @@ fun () ->
  let src = read_file file in
  let prog = Flux_syntax.Parser.parse_program src in
  Flux_syntax.Typeck.check_program prog;
  if dump_mir then
    List.iter
      (fun (_, body) -> Format.printf "%a@." Flux_mir.Ir.pp_body body)
      (Flux_mir.Lower.lower_program prog);
  (* cached hits replay verdicts without re-solving, so they have no κ
     solution to dump: [--dump-solution] implies a full re-check *)
  if dump_solution && cache then
    Format.eprintf
      "flux: note: --dump-solution disables the verification cache (cached \
       verdicts carry no solution)@.";
  let cfg =
    {
      Engine.jobs;
      cache_dir = (if cache && not dump_solution then Some cache_dir else None);
    }
  in
  let run = Engine.check_program_ast cfg prog in
  List.iter
    (fun (o : Engine.fn_outcome) ->
      let fr = o.Engine.fo_report in
      Diag.print_row ~quiet ~times ~name:fr.fr_name ~ok:(Checker.fn_ok fr)
        ~stats:(Printf.sprintf "%d κ, %d clauses" fr.fr_kvars fr.fr_clauses)
        ~time:fr.fr_time ~cached:o.Engine.fo_cached;
      Diag.print_errors Checker.pp_error fr.fr_errors;
      if dump_solution then
        match fr.fr_solution with
        | Some sol ->
            Format.printf "  inferred solution:@.%a"
              Flux_fixpoint.Solve.pp_solution sol
        | None -> ())
    run.Engine.run_fns;
  Diag.print_footer ~quiet ~times ~tool:"flux" ~ok:(Engine.run_ok run)
    ~fns:(List.length run.Engine.run_fns)
    ~hits:run.Engine.run_hits ~time:run.Engine.run_time

(* ------------------------------------------------------------------ *)
(* flux lint                                                           *)
(* ------------------------------------------------------------------ *)

let lint_cmd_run file format quiet jobs cache cache_dir times pass_sel all =
  Diag.with_frontend_errors ~tool:"flux" ~file @@ fun () ->
  let passes =
    if all then Passes.all_passes
    else if pass_sel <> [] then pass_sel
    else Passes.default_passes
  in
  (match
     List.find_opt (fun p -> not (List.mem p Passes.all_passes)) passes
   with
  | Some p ->
      Format.eprintf "flux: unknown lint pass `%s` (available: %s)@." p
        (String.concat ", " Passes.all_passes);
      exit Diag.exit_frontend
  | None -> ());
  let src = read_file file in
  let cfg =
    {
      Lint.jobs;
      cache_dir = (if cache then Some cache_dir else None);
      passes;
    }
  in
  let run = Lint.lint_source cfg src in
  (match format with
  | `Json -> print_string (Lint.json_of_run ~file run)
  | `Text -> Lint.print_text ~quiet ~times run);
  if Lint.run_clean run then Diag.exit_ok else Diag.exit_failed

(* ------------------------------------------------------------------ *)
(* flux fuzz                                                           *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd_run seed budget oracle jobs corpus no_corpus quiet =
  let oracles =
    match Fuzz.oracle_of_string oracle with
    | Some os -> os
    | None ->
        Format.eprintf
          "flux: unknown oracle `%s` (expected soundness, solver, fixpoint or \
           all)@."
          oracle;
        exit Diag.exit_frontend
  in
  let cfg =
    {
      Fuzz.seed;
      budget;
      oracles;
      jobs;
      corpus_dir = (if no_corpus then None else Some corpus);
    }
  in
  if not quiet then
    Format.printf "flux fuzz: seed=%d budget=%.0fs oracles=%s jobs=%d@." seed
      budget
      (String.concat "," (List.map Fuzz.oracle_name oracles))
      jobs;
  let summary = Fuzz.run cfg in
  let bugs = Fuzz.summary_bugs summary in
  (match cfg.Fuzz.corpus_dir with
  | Some dir when bugs <> [] ->
      let paths = Fuzz.write_corpus dir bugs in
      List.iter (Format.printf "  wrote reproducer %s@.") paths
  | _ -> ());
  Format.printf "%a" Fuzz.pp_summary summary;
  if bugs = [] then Diag.exit_ok else Diag.exit_failed

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Rust-subset source file")

let dump_mir_flag =
  Arg.(value & flag & info [ "dump-mir" ] ~doc:"Print the lowered MIR")

let dump_solution_flag =
  Arg.(value & flag & info [ "dump-solution" ]
         ~doc:"Print the inferred κ solutions (disables the cache)")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json)")

let pass_arg =
  Arg.(
    value & opt_all string []
    & info [ "pass" ] ~docv:"PASS"
        ~doc:
          "Run only the given pass (repeatable). Available: vacuity, \
           unreachable, trivial-refinement, dead-store, overflow")

let all_passes_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Run every pass, including the allow-by-default ones (overflow)")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with liquid refinement types")
    Term.(
      const check_cmd_run $ file_arg $ dump_mir_flag $ dump_solution_flag
      $ quiet_flag $ jobs_arg $ cache_flag $ cache_dir_arg $ times_flag)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the solver-backed lint passes (vacuous specs, unreachable \
          code, trivial inferred invariants, dead stores)")
    Term.(
      const lint_cmd_run $ file_arg $ format_arg $ quiet_flag $ jobs_arg
      $ cache_flag $ cache_dir_arg $ times_flag $ pass_arg $ all_passes_flag)

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Campaign seed; every reported bug reprints it")

let budget_arg =
  Arg.(
    value & opt float 10.0
    & info [ "budget" ] ~docv:"SECS"
        ~doc:
          "Time budget, mapped to a deterministic case count per oracle \
           (identical runs examine identical cases regardless of machine \
           speed)")

let oracle_arg =
  Arg.(
    value & opt string "all"
    & info [ "oracle" ] ~docv:"ORACLE"
        ~doc:
          "Which oracle to run: $(b,soundness), $(b,solver), $(b,fixpoint) \
           or $(b,all)")

let corpus_arg =
  Arg.(
    value & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for shrunk reproducers of found bugs")

let no_corpus_flag =
  Arg.(
    value & flag
    & info [ "no-corpus" ] ~doc:"Do not write reproducer files")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the verifier: generate random programs/terms/constraint \
          systems and cross-check the checker, the SMT layer and the \
          fixpoint solver against ground-truth oracles")
    Term.(
      const fuzz_cmd_run $ seed_arg $ budget_arg $ oracle_arg $ jobs_arg
      $ corpus_arg $ no_corpus_flag $ quiet_flag)

let main =
  Cmd.group
    (Cmd.info "flux" ~version:"0.1.0"
       ~doc:"Liquid types for a Rust subset (OCaml reproduction of Flux, PLDI 2023)")
    [ check_cmd; lint_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' main)
