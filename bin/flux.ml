(** The [flux] command-line verifier.

    Usage: [flux check FILE.rs] type-checks a program in the Rust
    subset against its [#[lr::sig(...)]] refinement signatures, with
    optional dumps of the MIR, the generated Horn constraints and the
    inferred κ solutions.

    Checking goes through the engine ({!Flux_engine.Engine}): functions
    are verified in parallel on [--jobs] domains and previously-proved
    functions are replayed from the persistent on-disk cache
    ([--cache-dir], disable with [--no-cache]). Output is byte-identical
    for every [--jobs] value: reports are emitted in declaration order
    and per-function wall-clock times are only shown on request
    ([--times], inherently nondeterministic). *)

open Cmdliner
module Checker = Flux_check.Checker
module Engine = Flux_engine.Engine

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cmd_run file dump_mir dump_solution quiet jobs cache cache_dir times =
  try
    let src = read_file file in
    let prog = Flux_syntax.Parser.parse_program src in
    Flux_syntax.Typeck.check_program prog;
    if dump_mir then
      List.iter
        (fun (_, body) -> Format.printf "%a@." Flux_mir.Ir.pp_body body)
        (Flux_mir.Lower.lower_program prog);
    let cfg =
      {
        Engine.jobs;
        (* cached hits replay verdicts without re-solving, so they have
           no κ solution to dump: [--dump-solution] implies a full
           re-check *)
        cache_dir = (if cache && not dump_solution then Some cache_dir else None);
      }
    in
    let run = Engine.check_program_ast cfg prog in
    List.iter
      (fun (o : Engine.fn_outcome) ->
        let fr = o.Engine.fo_report in
        if not quiet then
          if times then
            Format.printf "%-24s %s  (%d κ, %d clauses, %.3fs%s)@." fr.fr_name
              (if Checker.fn_ok fr then "OK" else "ERROR")
              fr.fr_kvars fr.fr_clauses fr.fr_time
              (if o.Engine.fo_cached then ", cached" else "")
          else
            Format.printf "%-24s %s  (%d κ, %d clauses)@." fr.fr_name
              (if Checker.fn_ok fr then "OK" else "ERROR")
              fr.fr_kvars fr.fr_clauses;
        List.iter
          (fun e -> Format.printf "  error: %a@." Checker.pp_error e)
          fr.fr_errors;
        if dump_solution then
          match fr.fr_solution with
          | Some sol ->
              Format.printf "  inferred solution:@.%a"
                Flux_fixpoint.Solve.pp_solution sol
          | None -> ())
      run.Engine.run_fns;
    if Engine.run_ok run then begin
      if not quiet then begin
        let n = List.length run.Engine.run_fns in
        let cached =
          if run.Engine.run_hits > 0 then
            Printf.sprintf " (%d from cache)" run.Engine.run_hits
          else ""
        in
        if times then
          Format.printf "flux: %d function(s) verified%s in %.3fs@." n cached
            run.Engine.run_time
        else Format.printf "flux: %d function(s) verified%s@." n cached
      end;
      0
    end
    else begin
      Format.printf "flux: verification FAILED@.";
      1
    end
  with
  | Sys_error msg ->
      Format.eprintf "flux: %s@." msg;
      2
  | Flux_syntax.Lexer.Error (msg, p) ->
      Format.eprintf "flux: %s:%d:%d: lexical error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Parser.Error (msg, p) ->
      Format.eprintf "flux: %s:%d:%d: parse error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Format.eprintf "flux: %s:%a: type error: %s@." file Flux_syntax.Ast.pp_span
        sp msg;
      2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Rust-subset source file")

let dump_mir_flag =
  Arg.(value & flag & info [ "dump-mir" ] ~doc:"Print the lowered MIR")

let dump_solution_flag =
  Arg.(value & flag & info [ "dump-solution" ]
         ~doc:"Print the inferred κ solutions (disables the cache)")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with liquid refinement types")
    Term.(
      const check_cmd_run $ file_arg $ dump_mir_flag $ dump_solution_flag
      $ quiet_flag $ jobs_arg $ cache_flag $ cache_dir_arg $ times_flag)

let main =
  Cmd.group
    (Cmd.info "flux" ~version:"0.1.0"
       ~doc:"Liquid types for a Rust subset (OCaml reproduction of Flux, PLDI 2023)")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
