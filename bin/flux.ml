(** The [flux] command-line verifier.

    Usage: [flux check FILE.rs] type-checks a program in the Rust
    subset against its [#[lr::sig(...)]] refinement signatures, with
    optional dumps of the MIR, the generated Horn constraints and the
    inferred κ solutions. [flux lint FILE.rs] runs the solver-backed
    static-analysis passes (vacuous specs, unreachable code, trivial
    inferred invariants, dead stores, overflow candidates) over the
    same functions.

    Both subcommands go through the engine ({!Flux_engine.Engine}):
    functions are processed in parallel on [--jobs] domains and
    previously-clean functions are replayed from the persistent on-disk
    cache ([--cache-dir], disable with [--no-cache]). Output is
    byte-identical for every [--jobs] value: reports are emitted in
    declaration order and wall-clock times are only shown on request
    ([--times], inherently nondeterministic).

    With [--daemon] the request is routed through a persistent [fluxd]
    process ({!Flux_server.Daemon}) over a Unix socket — auto-started
    on first use, managed explicitly with [flux daemon
    start|stop|status|metrics]. The daemon keeps verdicts in memory, so
    warm re-checks answer without any SMT queries; its output is
    byte-identical to the in-process path (both render through
    {!Flux_server.Exec}), and any daemon failure falls back to checking
    in-process. *)

open Cmdliner
module Engine = Flux_engine.Engine
module Diag = Flux_engine.Diag
module Passes = Flux_analysis.Passes
module Fuzz = Flux_fuzz.Fuzz
module Exec = Flux_server.Exec
module Daemon = Flux_server.Daemon
module Client = Flux_server.Client
module Protocol = Flux_server.Protocol
module Json = Flux_server.Json

(** Run one tool invocation — through the daemon when asked (and
    possible), in-process otherwise — then replay its rendered streams
    and return its exit code. *)
let run_tool ~daemon ~socket ~deadline (opts : Exec.opts) ~file =
  let local () =
    Exec.run ?deadline_ms:deadline opts ~file ~read:(fun () ->
        Diag.read_file file)
  in
  let outcome =
    if daemon then
      match Client.run ~socket ?deadline_ms:deadline opts ~file with
      | Some o -> o
      | None -> local ()
    else local ()
  in
  print_string outcome.Exec.out;
  prerr_string outcome.Exec.err;
  flush stdout;
  flush stderr;
  outcome.Exec.code

(* ------------------------------------------------------------------ *)
(* flux check                                                          *)
(* ------------------------------------------------------------------ *)

let check_cmd_run file dump_mir dump_solution quiet jobs cache cache_dir times
    daemon socket deadline fixpoint certify format absint absint_crosscheck =
  Flux_fixpoint.Solve.incremental_enabled := fixpoint = `Incremental;
  (* The schedule ref lives in this process; a daemon started earlier
     would not see the flip, so `--fixpoint naive` always runs
     in-process (both schedules produce byte-identical output — the
     flag exists precisely so CI can verify that). *)
  let daemon = daemon && fixpoint = `Incremental in
  let opts =
    {
      Exec.tool = Exec.Flux_check;
      quiet;
      times;
      jobs;
      cache;
      cache_dir;
      certify;
      absint;
      absint_crosscheck;
      dump_mir;
      dump_solution;
      format_json = (format = `Json);
      passes = [];
      all_passes = false;
    }
  in
  run_tool ~daemon ~socket ~deadline opts ~file

(* ------------------------------------------------------------------ *)
(* flux lint                                                           *)
(* ------------------------------------------------------------------ *)

let lint_cmd_run file format quiet jobs cache cache_dir times pass_sel all
    daemon socket deadline absint absint_crosscheck =
  let opts =
    {
      Exec.tool = Exec.Flux_lint;
      quiet;
      times;
      jobs;
      cache;
      cache_dir;
      certify = false;
      absint;
      absint_crosscheck;
      dump_mir = false;
      dump_solution = false;
      format_json = (format = `Json);
      passes = pass_sel;
      all_passes = all;
    }
  in
  run_tool ~daemon ~socket ~deadline opts ~file

(* ------------------------------------------------------------------ *)
(* flux fuzz                                                           *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd_run seed budget oracle jobs corpus no_corpus quiet =
  let oracles =
    match Fuzz.oracle_of_string oracle with
    | Some os -> os
    | None ->
        Format.eprintf
          "flux: unknown oracle `%s` (expected soundness, solver, cert, \
           fixpoint, incremental, absint or all)@."
          oracle;
        exit Diag.exit_frontend
  in
  let cfg =
    {
      Fuzz.seed;
      budget;
      oracles;
      jobs;
      corpus_dir = (if no_corpus then None else Some corpus);
    }
  in
  if not quiet then
    Format.printf "flux fuzz: seed=%d budget=%.0fs oracles=%s jobs=%d@." seed
      budget
      (String.concat "," (List.map Fuzz.oracle_name oracles))
      jobs;
  let summary = Fuzz.run cfg in
  let bugs = Fuzz.summary_bugs summary in
  (match cfg.Fuzz.corpus_dir with
  | Some dir when bugs <> [] ->
      let paths = Fuzz.write_corpus dir bugs in
      List.iter (Format.printf "  wrote reproducer %s@.") paths
  | _ -> ());
  Format.printf "%a" Fuzz.pp_summary summary;
  if bugs = [] then Diag.exit_ok else Diag.exit_failed

(* ------------------------------------------------------------------ *)
(* flux daemon                                                         *)
(* ------------------------------------------------------------------ *)

let daemon_start_run socket foreground =
  let cfg = { Daemon.socket } in
  if foreground then
    match Daemon.serve cfg with
    | Ok () -> 0
    | Error msg ->
        Format.eprintf "%s@." msg;
        1
  else
    match Daemon.daemonize cfg with
    | Ok (Daemon.Started pid) ->
        Format.printf "fluxd: started (pid %d, socket %s)@." pid socket;
        0
    | Ok Daemon.Already_running ->
        Format.printf "fluxd: already running (socket %s)@." socket;
        0
    | Error msg ->
        Format.eprintf "%s@." msg;
        1

let daemon_stop_run socket =
  match Client.roundtrip ~socket Protocol.Shutdown with
  | Ok _ ->
      (* wait for the drain to complete so "stop && start" is reliable *)
      let t0 = Unix.gettimeofday () in
      while Sys.file_exists socket && Unix.gettimeofday () -. t0 < 10. do
        ignore (Unix.select [] [] [] 0.05)
      done;
      Format.printf "fluxd: stopped@.";
      0
  | Error _ ->
      Format.eprintf "fluxd: not running (socket %s)@." socket;
      1

let daemon_info_run req socket =
  match Client.roundtrip ~socket req with
  | Ok (Protocol.Info j) ->
      print_string (Json.to_string ~pretty:true j);
      0
  | Ok _ | Error _ ->
      Format.eprintf "fluxd: not running (socket %s)@." socket;
      1

(* ------------------------------------------------------------------ *)
(* Arguments                                                           *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Rust-subset source file")

let dump_mir_flag =
  Arg.(value & flag & info [ "dump-mir" ] ~doc:"Print the lowered MIR")

let dump_solution_flag =
  Arg.(value & flag & info [ "dump-solution" ]
         ~doc:"Print the inferred κ solutions (disables the cache)")

let fixpoint_arg =
  Arg.(
    value
    & opt (enum [ ("incremental", `Incremental); ("naive", `Naive) ]) `Incremental
    & info [ "fixpoint" ] ~docv:"SCHEDULE"
        ~doc:
          "Fixpoint schedule: $(b,incremental) (default; SCC-sliced \
           dependency-aware weakening) or $(b,naive) (the reference full \
           sweep). Output is byte-identical either way; $(b,naive) exists \
           for differential testing and always runs in-process (a daemon \
           would not see the flag)")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Report format: $(b,text) or $(b,json)")

let pass_arg =
  Arg.(
    value & opt_all string []
    & info [ "pass" ] ~docv:"PASS"
        ~doc:
          "Run only the given pass (repeatable). Available: vacuity, \
           unreachable, trivial-refinement, dead-store, div-by-zero, \
           index-bounds, overflow")

let all_passes_flag =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Run every pass, including the allow-by-default ones (overflow)")

let absint_flag =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "absint" ]
              ~doc:
                "Discharge trivially-valid proof obligations with the \
                 abstract-interpretation pre-solver before any SMT \
                 (default). Verdicts are byte-identical either way" );
          ( false,
            info [ "no-absint" ]
              ~doc:
                "Send every proof obligation to the SMT solver (disables \
                 the abstract pre-solver discharge)" );
        ])

let absint_crosscheck_flag =
  Arg.(
    value & flag
    & info [ "absint-crosscheck" ]
        ~doc:
          "Re-solve every clause the abstract pre-solver discharged and \
           take the solver's verdict; disagreements are counted in the \
           $(b,absint.crosscheck_fail) profile counter (used by CI to \
           audit the discharge layer)")

let daemon_flag =
  Arg.(
    value & flag
    & info [ "daemon" ]
        ~doc:
          "Route the request through a persistent $(b,fluxd) daemon \
           (auto-started on first use); falls back to in-process checking \
           if the daemon is unreachable. Output is byte-identical to the \
           non-daemon path")

let socket_arg =
  Arg.(
    value
    & opt string (Client.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix-domain socket path")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"MS"
        ~doc:
          "Abandon the request after $(docv) milliseconds (checked at \
           function boundaries); exit code 3 on expiry")

let certify_flag =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Emit an independently replayable proof certificate for every \
           verified obligation (stored next to the cache entry; warm runs \
           re-validate by replay instead of trusting the cache), and attach \
           a verified falsifying assignment plus an executable \
           counterexample trace to every failure")

let foreground_flag =
  Arg.(
    value & flag
    & info [ "foreground" ]
        ~doc:"Run the daemon in the foreground instead of detaching")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with liquid refinement types")
    Term.(
      const check_cmd_run $ file_arg $ dump_mir_flag $ dump_solution_flag
      $ quiet_flag $ jobs_arg $ cache_flag $ cache_dir_arg $ times_flag
      $ daemon_flag $ socket_arg $ deadline_arg $ fixpoint_arg $ certify_flag
      $ format_arg $ absint_flag $ absint_crosscheck_flag)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the solver-backed lint passes (vacuous specs, unreachable \
          code, trivial inferred invariants, dead stores)")
    Term.(
      const lint_cmd_run $ file_arg $ format_arg $ quiet_flag $ jobs_arg
      $ cache_flag $ cache_dir_arg $ times_flag $ pass_arg $ all_passes_flag
      $ daemon_flag $ socket_arg $ deadline_arg $ absint_flag
      $ absint_crosscheck_flag)

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:"Campaign seed; every reported bug reprints it")

let budget_arg =
  Arg.(
    value & opt float 10.0
    & info [ "budget" ] ~docv:"SECS"
        ~doc:
          "Time budget, mapped to a deterministic case count per oracle \
           (identical runs examine identical cases regardless of machine \
           speed)")

let oracle_arg =
  Arg.(
    value & opt string "all"
    & info [ "oracle" ] ~docv:"ORACLE"
        ~doc:
          "Which oracle to run: $(b,soundness), $(b,solver), $(b,cert) \
           (certificate replay), $(b,fixpoint), $(b,incremental) \
           (full-vs-incremental schedule differential), $(b,absint) \
           (abstract-interpretation γ-containment and discharge \
           soundness) or $(b,all)")

let corpus_arg =
  Arg.(
    value & opt string "fuzz-corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:"Directory for shrunk reproducers of found bugs")

let no_corpus_flag =
  Arg.(
    value & flag
    & info [ "no-corpus" ] ~doc:"Do not write reproducer files")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the verifier: generate random programs/terms/constraint \
          systems and cross-check the checker, the SMT layer and the \
          fixpoint solver against ground-truth oracles")
    Term.(
      const fuzz_cmd_run $ seed_arg $ budget_arg $ oracle_arg $ jobs_arg
      $ corpus_arg $ no_corpus_flag $ quiet_flag)

let daemon_cmd =
  Cmd.group
    (Cmd.info "daemon"
       ~doc:
         "Manage the persistent verification daemon ($(b,fluxd)): an \
          always-on process that keeps verdicts in memory so warm \
          re-checks answer without SMT queries")
    [
      Cmd.v
        (Cmd.info "start" ~doc:"Start the daemon (no-op if already running)")
        Term.(const daemon_start_run $ socket_arg $ foreground_flag);
      Cmd.v
        (Cmd.info "stop" ~doc:"Stop the daemon (drains in-flight requests)")
        Term.(const daemon_stop_run $ socket_arg);
      Cmd.v
        (Cmd.info "status" ~doc:"Print daemon status as JSON")
        Term.(const (daemon_info_run Protocol.Status) $ socket_arg);
      Cmd.v
        (Cmd.info "metrics"
           ~doc:
             "Print aggregate daemon metrics as JSON (requests, cache-tier \
              hits, SMT queries, latency percentiles)")
        Term.(const (daemon_info_run Protocol.Metrics) $ socket_arg);
    ]

let main =
  Cmd.group
    (Cmd.info "flux" ~version:"0.1.0"
       ~doc:"Liquid types for a Rust subset (OCaml reproduction of Flux, PLDI 2023)")
    [ check_cmd; lint_cmd; fuzz_cmd; daemon_cmd ]

let () = exit (Cmd.eval' main)
