(** The [prusti] command-line verifier — the program-logic baseline.

    Usage: [prusti check FILE.rs] verifies a program annotated with
    Prusti-style contracts ([#[requires]], [#[ensures]]) and loop
    invariants ([body_invariant!]).

    Like [flux check], verification goes through the engine: [--jobs]
    domains in parallel, persistent verdict cache keyed on bodies and
    contracts ([--no-cache] to disable), declaration-order output with
    times gated behind [--times]. *)

open Cmdliner
module Wp = Flux_wp.Wp
module Engine = Flux_engine.Engine

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cmd_run file quiet jobs cache cache_dir times =
  try
    let src = read_file file in
    let cfg =
      { Engine.jobs; cache_dir = (if cache then Some cache_dir else None) }
    in
    let run = Engine.verify_source cfg src in
    List.iter
      (fun (o : Engine.wp_outcome) ->
        let fr = o.Engine.wo_report in
        if not quiet then
          if times then
            Format.printf "%-24s %s  (%d VCs, %.3fs%s)@." fr.fr_name
              (if Wp.fn_ok fr then "OK" else "ERROR")
              fr.fr_vcs fr.fr_time
              (if o.Engine.wo_cached then ", cached" else "")
          else
            Format.printf "%-24s %s  (%d VCs)@." fr.fr_name
              (if Wp.fn_ok fr then "OK" else "ERROR")
              fr.fr_vcs;
        List.iter (fun e -> Format.printf "  error: %a@." Wp.pp_error e) fr.fr_errors)
      run.Engine.wr_fns;
    if Engine.wp_run_ok run then begin
      if not quiet then begin
        let n = List.length run.Engine.wr_fns in
        let cached =
          if run.Engine.wr_hits > 0 then
            Printf.sprintf " (%d from cache)" run.Engine.wr_hits
          else ""
        in
        if times then
          Format.printf "prusti: %d function(s) verified%s in %.3fs@." n cached
            run.Engine.wr_time
        else Format.printf "prusti: %d function(s) verified%s@." n cached
      end;
      0
    end
    else begin
      Format.printf "prusti: verification FAILED@.";
      1
    end
  with
  | Sys_error msg ->
      Format.eprintf "prusti: %s@." msg;
      2
  | Flux_syntax.Lexer.Error (msg, p) ->
      Format.eprintf "prusti: %s:%d:%d: lexical error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Parser.Error (msg, p) ->
      Format.eprintf "prusti: %s:%d:%d: parse error: %s@." file p.line p.col msg;
      2
  | Flux_syntax.Typeck.Error (msg, sp) ->
      Format.eprintf "prusti: %s:%a: type error: %s@." file
        Flux_syntax.Ast.pp_span sp msg;
      2

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Annotated source file")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with the program-logic baseline")
    Term.(
      const check_cmd_run $ file_arg $ quiet_flag $ jobs_arg $ cache_flag
      $ cache_dir_arg $ times_flag)

let main =
  Cmd.group
    (Cmd.info "prusti" ~version:"0.1.0"
       ~doc:"Program-logic baseline verifier (Prusti-style), for the paper's comparison")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
