(** The [prusti] command-line verifier — the program-logic baseline.

    Usage: [prusti check FILE.rs] verifies a program annotated with
    Prusti-style contracts ([#[requires]], [#[ensures]]) and loop
    invariants ([body_invariant!]).

    Like [flux check], verification goes through the engine: [--jobs]
    domains in parallel, persistent verdict cache keyed on bodies and
    contracts ([--no-cache] to disable), declaration-order output with
    times gated behind [--times]. *)

open Cmdliner
module Wp = Flux_wp.Wp
module Engine = Flux_engine.Engine
module Diag = Flux_engine.Diag

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_cmd_run file quiet jobs cache cache_dir times =
  Diag.with_frontend_errors ~tool:"prusti" ~file @@ fun () ->
  let src = read_file file in
  let cfg =
    { Engine.jobs; cache_dir = (if cache then Some cache_dir else None) }
  in
  let run = Engine.verify_source cfg src in
  List.iter
    (fun (o : Engine.wp_outcome) ->
      let fr = o.Engine.wo_report in
      Diag.print_row ~quiet ~times ~name:fr.fr_name ~ok:(Wp.fn_ok fr)
        ~stats:(Printf.sprintf "%d VCs" fr.fr_vcs)
        ~time:fr.fr_time ~cached:o.Engine.wo_cached;
      Diag.print_errors Wp.pp_error fr.fr_errors)
    run.Engine.wr_fns;
  Diag.print_footer ~quiet ~times ~tool:"prusti" ~ok:(Engine.wp_run_ok run)
    ~fns:(List.length run.Engine.wr_fns)
    ~hits:run.Engine.wr_hits ~time:run.Engine.wr_time

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Annotated source file")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with the program-logic baseline")
    Term.(
      const check_cmd_run $ file_arg $ quiet_flag $ jobs_arg $ cache_flag
      $ cache_dir_arg $ times_flag)

let main =
  Cmd.group
    (Cmd.info "prusti" ~version:"0.1.0"
       ~doc:"Program-logic baseline verifier (Prusti-style), for the paper's comparison")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
