(** The [prusti] command-line verifier — the program-logic baseline.

    Usage: [prusti check FILE.rs] verifies a program annotated with
    Prusti-style contracts ([#[requires]], [#[ensures]]) and loop
    invariants ([body_invariant!]).

    Like [flux check], verification goes through the engine: [--jobs]
    domains in parallel, persistent verdict cache keyed on bodies and
    contracts ([--no-cache] to disable), declaration-order output with
    times gated behind [--times]. [--daemon] routes through the same
    [fluxd] daemon as [flux check] (one daemon serves both tools — the
    cache keys are disjoint by construction), auto-starting it via the
    [flux] binary found next to this one. *)

open Cmdliner
module Engine = Flux_engine.Engine
module Diag = Flux_engine.Diag
module Exec = Flux_server.Exec
module Client = Flux_server.Client

let check_cmd_run file quiet jobs cache cache_dir times daemon socket deadline
    certify absint absint_crosscheck =
  let opts =
    {
      Exec.tool = Exec.Prusti_check;
      quiet;
      times;
      jobs;
      cache;
      cache_dir;
      certify;
      absint;
      absint_crosscheck;
      dump_mir = false;
      dump_solution = false;
      format_json = false;
      passes = [];
      all_passes = false;
    }
  in
  let local () =
    Exec.run ?deadline_ms:deadline opts ~file ~read:(fun () ->
        Diag.read_file file)
  in
  let outcome =
    if daemon then
      match Client.run ~socket ?deadline_ms:deadline opts ~file with
      | Some o -> o
      | None -> local ()
    else local ()
  in
  print_string outcome.Exec.out;
  prerr_string outcome.Exec.err;
  flush stdout;
  flush stderr;
  outcome.Exec.code

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Annotated source file")

let quiet_flag = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print errors")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Verify functions in parallel on $(docv) domains (0 = one per core; clamped to core count)")

let cache_flag =
  Arg.(
    value
    & vflag true
        [
          (true, info [ "cache" ] ~doc:"Use the persistent verification cache (default)");
          (false, info [ "no-cache" ] ~doc:"Disable the persistent verification cache");
        ])

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.default_cache_dir
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Verification cache directory")

let times_flag =
  Arg.(
    value & flag
    & info [ "times" ]
        ~doc:"Show per-function and total wall-clock times (nondeterministic)")

let daemon_flag =
  Arg.(
    value & flag
    & info [ "daemon" ]
        ~doc:
          "Route the request through the persistent $(b,fluxd) daemon \
           (auto-started on first use); falls back to in-process checking \
           if the daemon is unreachable")

let socket_arg =
  Arg.(
    value
    & opt string (Client.default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix-domain socket path")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"MS"
        ~doc:
          "Abandon the request after $(docv) milliseconds (checked at \
           function boundaries); exit code 3 on expiry")

let certify_flag =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:
          "Emit an independently replayable proof certificate for every \
           discharged VC (warm runs re-validate by replay instead of \
           trusting the cache), and attach a verified falsifying \
           assignment plus an executable counterexample trace to every \
           failure")

let absint_flag =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "absint" ]
              ~doc:
                "Discharge trivially-valid VCs with the abstract \
                 pre-solver before any SMT (default)" );
          ( false,
            info [ "no-absint" ]
              ~doc:"Send every VC to the SMT solver" );
        ])

let absint_crosscheck_flag =
  Arg.(
    value & flag
    & info [ "absint-crosscheck" ]
        ~doc:
          "Re-solve every VC the abstract pre-solver discharged and take \
           the solver's verdict (audit mode)")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Verify a program with the program-logic baseline")
    Term.(
      const check_cmd_run $ file_arg $ quiet_flag $ jobs_arg $ cache_flag
      $ cache_dir_arg $ times_flag $ daemon_flag $ socket_arg $ deadline_arg
      $ certify_flag $ absint_flag $ absint_crosscheck_flag)

let main =
  Cmd.group
    (Cmd.info "prusti" ~version:"0.1.0"
       ~doc:"Program-logic baseline verifier (Prusti-style), for the paper's comparison")
    [ check_cmd ]

let () = exit (Cmd.eval' main)
