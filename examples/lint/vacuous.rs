// Seeded defect: the precondition is unsatisfiable, so the function
// verifies for free — `flux lint` flags it with the `vacuity` pass.
//   dune exec bin/flux.exe -- lint examples/lint/vacuous.rs
#[lr::sig(fn(i32{v: v < 0 && v > 10}) -> i32)]
fn impossible(n: i32) -> i32 {
    n
}
