// Seeded defect: the vector holds one element but index 3 is asked
// for, so the access is out of bounds on every execution — `flux lint`
// flags it with the `index-bounds` pass (the abstract interpreter
// tracks the length through `new`/`push`). The refinement checker
// independently rejects the access; the lint names the defect without
// any solver query.
//   dune exec bin/flux.exe -- lint examples/lint/index_oob.rs
#[lr::sig(fn() -> i32)]
fn oob() -> i32 {
    let mut v = RVec::new();
    v.push(1);
    return *v.get(3);
}
