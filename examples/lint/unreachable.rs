// Seeded defect: the inner branch contradicts the dominating test
// (x < 0 and x > 10), so no input reaches `return 1` — `flux lint`
// flags it with the `unreachable` pass.
//   dune exec bin/flux.exe -- lint examples/lint/unreachable.rs
#[lr::sig(fn(i32) -> i32)]
fn shadowed(x: i32) -> i32 {
    if x < 0 {
        if x > 10 {
            return 1;
        }
    }
    return 0;
}
