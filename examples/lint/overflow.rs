// Seeded defect: `n + n` is only bounded below by the refinement, so
// nothing keeps it inside the i32 range. The allow-by-default
// `overflow` pass flags it (and accepts `safe_double`, whose
// precondition does bound the sum):
//   dune exec bin/flux.exe -- lint --all examples/lint/overflow.rs
#[lr::sig(fn(i32{v: 0 <= v}) -> i32)]
fn unbounded_double(n: i32) -> i32 {
    return n + n;
}

#[lr::sig(fn(i32{v: 0 <= v && v < 1000}) -> i32)]
fn safe_double(n: i32) -> i32 {
    return n + n;
}
