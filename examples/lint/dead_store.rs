// Seeded defect: the initializer of `x` is overwritten before any
// read — `flux lint` flags it with the `dead-store` pass.
//   dune exec bin/flux.exe -- lint examples/lint/dead_store.rs
#[lr::sig(fn(i32) -> i32)]
fn wasted(n: i32) -> i32 {
    let mut x = 0;
    x = n;
    return x;
}
