// Seeded defect: the halving update is outside the qualifier lattice,
// so every κ inferred at the loop head collapses to `true` — the
// "invariant" says nothing. `flux lint` flags it with the
// `trivial-refinement` pass.
//   dune exec bin/flux.exe -- lint examples/lint/trivial.rs
#[lr::sig(fn(i32) -> i32)]
fn collapse(n: i32) -> i32 {
    let mut x = n;
    while x != 0 {
        x = x / 2;
    }
    return x;
}
