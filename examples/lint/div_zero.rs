// Seeded defect: `d` is the constant 0 on every path, so the division
// always faults — `flux lint` flags it with the `div-by-zero` pass
// (proved by abstract interpretation, no solver query).
//   dune exec bin/flux.exe -- lint examples/lint/div_zero.rs
#[lr::sig(fn(i32) -> i32)]
fn crash(n: i32) -> i32 {
    let d = 0;
    return n / d;
}
