// An off-by-one bug: flux rejects this program.
//   dune exec bin/flux.exe -- check examples/programs/oob.rs
#[lr::sig(fn(&RVec<f32, @n>) -> f32)]
fn sum(v: &RVec<f32>) -> f32 {
    let mut s = 0.0;
    let mut i = 0;
    while i <= v.len() {
        s = s + *v.get(i);
        i += 1;
    }
    s
}
