// The corrected sum, annotated for the program-logic baseline:
//   dune exec bin/prusti.exe -- check examples/programs/sum_annotated.rs
// Remove the body_invariant! line and the baseline rejects the program;
// flux needs no annotation at all for the fixed version.
fn sum(v: &RVec<f32>) -> f32 {
    let mut s = 0.0;
    let mut i = 0;
    while i < v.len() {
        body_invariant!(i <= v.len());
        s = s + *v.get(i);
        i += 1;
    }
    s
}
