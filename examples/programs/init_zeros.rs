// The paper's fig. 2 example: verify with
//   dune exec bin/flux.exe -- check examples/programs/init_zeros.rs
#[lr::sig(fn(usize<@n>) -> RVec<f32, n>)]
fn init_zeros(n: usize) -> RVec<f32> {
    let mut vec = RVec::new();
    let mut i = 0;
    while i < n {
        vec.push(0.0);
        i += 1;
    }
    vec
}
